//! Durability suite: deterministic crash injection over the
//! ContextManager snapshot and the tenant-ledger WAL.
//!
//! The contract under test, for every [`CrashPoint`] the save and append
//! paths expose: *recover(crash(S)) ∈ {S_pre, S_committed}*. A crash may
//! lose the in-flight snapshot or ledger record entirely, but recovery
//! never observes a half-applied ledger entry, a torn snapshot, or a
//! Context whose lineage (documents, findings, cost metadata) dangles.
//!
//! Set `AIDA_DURABILITY_DUMP=<dir>` to export the recovered state of the
//! fixed scenario as JSONL; CI runs the suite twice at the same seed and
//! diffs the dumps byte-for-byte.

use aida::core::{Context, Runtime};
use aida::data::{DataLake, Document};
use aida::llm::snapshot::{CrashPoint, FailPlan};
use aida::serve::{
    open_loop, LedgerRecord, LedgerWal, QueryService, ServeConfig, TenantConfig, TenantId,
    TenantLedger, TenantLoad,
};
use aida_testkit::{corrupt_byte, crash_points, truncate_tail, TestDir};
use std::fs;
use std::path::Path;
use std::sync::Arc;

fn lake() -> DataLake {
    DataLake::from_docs([
        Document::new("report_2001.txt", "identity theft reports in 2001: 86250"),
        Document::new("report_2002.txt", "identity theft reports in 2002: 161977"),
        Document::new("report_2024.txt", "identity theft reports in 2024: 1135291"),
    ])
}

fn spend(tenant: &str, usd: f64) -> LedgerRecord {
    LedgerRecord::Spend {
        tenant: tenant.into(),
        usd,
        tokens: 100,
        calls: 2,
        cache_hits: 1,
        cache_coalesced: 0,
    }
}

/// Recovers whatever is on disk into a fresh ledger and returns the
/// per-tenant dollar bits plus the recovery stats.
fn recover_usd_bits(path: &Path, tenant: &str) -> (u64, aida::serve::WalRecovery) {
    let mut ledger = TenantLedger::new();
    let mut wal = LedgerWal::open(path);
    let recovery = wal.recover(&mut ledger).expect("recovery never fails");
    (ledger.spend(&tenant.into()).usd.to_bits(), recovery)
}

// ---- tentpole: snapshot crash matrix -----------------------------------

/// Crash the ContextManager checkpoint at every injection point. The
/// state file must afterwards decode to exactly the pre-crash snapshot
/// (crash before the rename commit) or the new one (crash after) — the
/// atomic-rename discipline leaves no third possibility.
#[test]
fn snapshot_crash_recovery_is_pre_or_committed() {
    let dir = TestDir::new("snap-crash");
    let state = dir.file("state.bin");
    let rt = Runtime::builder().seed(7).state_path(&state).build();
    let ctx = Context::builder("lake", lake())
        .description("FTC identity theft reports by year")
        .build(&rt);

    let _ = rt
        .query(&ctx)
        .compute("count identity theft reports in 2001")
        .run();
    assert!(rt.save_state().unwrap());
    let s_pre = fs::read_to_string(&state).unwrap();

    let _ = rt
        .query(&ctx)
        .compute("count identity theft reports in 2002")
        .run();
    let s_committed = rt.manager().encode_snapshot();
    assert_ne!(s_pre, s_committed, "second query changed the store");

    let snapshot_points = [
        CrashPoint::SnapshotBeforeWrite,
        CrashPoint::SnapshotTornWrite,
        CrashPoint::SnapshotBeforeRename,
        CrashPoint::SnapshotAfterCommit,
    ];
    for point in snapshot_points {
        fs::write(&state, &s_pre).unwrap();
        let plan = FailPlan::new(point).torn_keep(9);
        let err = rt.save_state_with(Some(&plan)).unwrap_err();
        assert!(FailPlan::is_crash(&err), "{point:?}");
        assert!(plan.tripped(), "{point:?}");

        // "Restart": a fresh runtime loads whatever survived on disk.
        let recovered = Runtime::builder().seed(7).state_path(&state).build();
        let got = recovered.manager().encode_snapshot();
        if point.is_post_commit() {
            assert_eq!(got, s_committed, "{point:?}: rename landed, new state");
        } else {
            assert_eq!(got, s_pre, "{point:?}: crash pre-commit keeps old state");
        }
    }

    // And the clean save commits the new state.
    fs::write(&state, &s_pre).unwrap();
    assert!(rt.save_state().unwrap());
    let recovered = Runtime::builder().seed(7).state_path(&state).build();
    assert_eq!(recovered.manager().encode_snapshot(), s_committed);
}

/// A corrupted or truncated state file is rejected wholesale (the
/// runtime starts empty rather than loading garbage), never partially
/// applied.
#[test]
fn corrupt_snapshot_is_rejected_not_partially_loaded() {
    let dir = TestDir::new("snap-corrupt");
    let state = dir.file("state.bin");
    let rt = Runtime::builder().seed(7).state_path(&state).build();
    let ctx = Context::builder("lake", lake())
        .description("FTC identity theft reports by year")
        .build(&rt);
    let _ = rt
        .query(&ctx)
        .compute("count identity theft reports in 2001")
        .run();
    rt.save_state().unwrap();
    let clean = fs::read(&state).unwrap();

    for index in [0usize, clean.len() / 2, clean.len() - 1] {
        fs::write(&state, &clean).unwrap();
        corrupt_byte(&state, index);
        let recovered = Runtime::builder().seed(7).state_path(&state).build();
        assert_eq!(
            recovered.manager().len(),
            0,
            "byte {index}: corruption must reject the whole snapshot"
        );
    }

    fs::write(&state, &clean).unwrap();
    truncate_tail(&state, 5);
    let recovered = Runtime::builder().seed(7).state_path(&state).build();
    assert_eq!(recovered.manager().len(), 0, "truncated snapshot rejected");
}

// ---- tentpole: WAL crash matrix ----------------------------------------

/// Crash the ledger append at every injection point. Recovery must see
/// either the ledger without the in-flight record or with it applied in
/// full — a torn tail is logically truncated, never half-decoded.
#[test]
fn wal_crash_never_half_applies_a_ledger_entry() {
    let dir = TestDir::new("wal-crash");
    let path = dir.file("ledger.wal");

    let mut wal = LedgerWal::open(&path);
    for i in 0..3 {
        wal.append(&spend("acme", 0.25 + i as f64 * 0.125)).unwrap();
    }
    let base_bytes = fs::read(&path).unwrap();
    let (pre_bits, pre) = recover_usd_bits(&path, "acme");
    assert_eq!(pre.replayed, 3);

    // What the ledger looks like if the fourth record lands in full.
    let mut committed = TenantLedger::new();
    for i in 0..3 {
        committed.apply(&spend("acme", 0.25 + i as f64 * 0.125));
    }
    committed.apply(&spend("acme", 1.0));
    let committed_bits = committed.spend(&"acme".into()).usd.to_bits();

    let wal_points = [
        CrashPoint::WalBeforeAppend,
        CrashPoint::WalTornAppend,
        CrashPoint::WalAfterAppend,
    ];
    // The snapshot matrix (4), this append matrix (3), and the
    // log-structured matrix (3: seal, delta frame, group flush) must
    // together cover every injection point.
    assert_eq!(wal_points.len() + 4 + 3, crash_points().len());
    for point in wal_points {
        fs::write(&path, &base_bytes).unwrap();
        let plan = Arc::new(FailPlan::new(point).torn_keep(11));
        let mut w = LedgerWal::open(&path).with_fail_plan(plan.clone());
        let mut scratch = TenantLedger::new();
        w.recover(&mut scratch).unwrap();
        let err = w.append(&spend("acme", 1.0)).unwrap_err();
        assert!(FailPlan::is_crash(&err), "{point:?}");
        assert!(plan.tripped(), "{point:?}");

        let (bits, recovery) = recover_usd_bits(&path, "acme");
        if point.is_post_commit() {
            assert_eq!(recovery.replayed, 4, "{point:?}");
            assert_eq!(bits, committed_bits, "{point:?}: record applied in full");
        } else {
            assert_eq!(recovery.replayed, 3, "{point:?}");
            assert_eq!(bits, pre_bits, "{point:?}: record lost in full");
        }
        assert_eq!(
            recovery.dropped_tail,
            point == CrashPoint::WalTornAppend,
            "{point:?}"
        );
    }
}

// ---- tentpole: log-structured crash matrix -----------------------------

/// Crash the three log-structured sites. A group-commit flush crash
/// loses the whole batch (never part of a record); a segment-seal crash
/// loses only the rename (every acknowledged record stays durable in
/// the unsealed tail); a torn batch keeps an intact record prefix.
#[test]
fn log_structured_crashes_lose_batches_whole_and_seals_lose_nothing() {
    let dir = TestDir::new("log-crash");

    // GroupCommitFlush: the batch is dropped before any byte lands.
    let path = dir.file("group.wal");
    let mut wal = LedgerWal::open(&path);
    wal.append(&spend("acme", 0.25)).unwrap();
    let (pre_bits, _) = recover_usd_bits(&path, "acme");
    let plan = Arc::new(FailPlan::new(CrashPoint::GroupCommitFlush));
    let mut w = LedgerWal::open(&path).with_fail_plan(plan.clone());
    let mut scratch = TenantLedger::new();
    w.recover(&mut scratch).unwrap();
    let err = w
        .append_batch(&[spend("acme", 1.0), spend("acme", 2.0)])
        .unwrap_err();
    assert!(FailPlan::is_crash(&err));
    assert!(plan.tripped());
    let (bits, recovery) = recover_usd_bits(&path, "acme");
    assert_eq!(recovery.replayed, 1, "batch lost in full");
    assert_eq!(bits, pre_bits);
    assert!(!recovery.dropped_tail, "nothing landed, nothing torn");

    // WalTornAppend through the batch path: an intact prefix of the
    // batch survives, the torn record is truncated away.
    let path = dir.file("torn-batch.wal");
    let first = spend("acme", 1.0);
    let first_len = {
        // One record's exact line length, to tear inside record 2.
        let probe = dir.file("probe.wal");
        let mut w = LedgerWal::open(&probe);
        w.append(&first).unwrap();
        fs::read(&probe).unwrap().len()
    };
    let plan = Arc::new(FailPlan::new(CrashPoint::WalTornAppend).torn_keep(first_len + 7));
    let mut w = LedgerWal::open(&path).with_fail_plan(plan);
    let err = w
        .append_batch(&[first.clone(), spend("acme", 2.0), spend("acme", 4.0)])
        .unwrap_err();
    assert!(FailPlan::is_crash(&err));
    let (bits, recovery) = recover_usd_bits(&path, "acme");
    assert_eq!(recovery.replayed, 1, "record 0 of the batch survives");
    assert!(recovery.dropped_tail);
    let mut only_first = TenantLedger::new();
    only_first.apply(&first);
    assert_eq!(bits, only_first.spend(&"acme".into()).usd.to_bits());

    // WalSegmentSeal: the crash costs the rename, not the records.
    let path = dir.file("seal.wal");
    let plan = Arc::new(FailPlan::new(CrashPoint::WalSegmentSeal));
    let mut w = LedgerWal::open(&path)
        .segment_records(2)
        .with_fail_plan(plan.clone());
    w.append(&spend("acme", 0.25)).unwrap();
    let err = w.append(&spend("acme", 0.5)).unwrap_err();
    assert!(FailPlan::is_crash(&err));
    assert!(plan.tripped());
    let mut committed = TenantLedger::new();
    committed.apply(&spend("acme", 0.25));
    committed.apply(&spend("acme", 0.5));
    let (bits, recovery) = recover_usd_bits(&path, "acme");
    assert_eq!(recovery.replayed, 2, "both acknowledged records durable");
    assert_eq!(bits, committed.spend(&"acme".into()).usd.to_bits());
    assert_eq!(recovery.sealed_segments, 0, "the seal itself was lost");
}

/// Crash the delta-frame append: a torn frame rolls the restored
/// manager back to the previous checkpoint — never to a half-applied
/// store.
#[test]
fn torn_delta_frame_recovers_the_previous_checkpoint() {
    let dir = TestDir::new("delta-torn");
    let state = dir.file("state.bin");
    let build = || {
        Runtime::builder()
            .seed(7)
            .state_path(&state)
            .delta_checkpoints(true)
            .build()
    };
    let rt = build();
    let mk = |name: &str| {
        Context::builder(
            name,
            DataLake::from_docs([Document::new(format!("{name}.txt"), format!("{name} doc"))]),
        )
        .description(name)
        .build(&rt)
    };
    rt.manager().register("alpha instruction", mk("alpha"), 1.0);
    assert!(rt.save_state().unwrap()); // full snapshot (chain base)
    rt.manager().register("beta instruction", mk("beta"), 2.0);
    assert!(rt.save_state().unwrap()); // delta frame 1
    let committed = rt.manager().encode_snapshot();

    rt.manager().register("gamma instruction", mk("gamma"), 3.0);
    let plan = FailPlan::new(CrashPoint::DeltaTornAppend).torn_keep(9);
    let err = rt.save_state_with(Some(&plan)).unwrap_err();
    assert!(FailPlan::is_crash(&err));
    assert!(plan.tripped());

    // Restart: the torn frame is dropped, the intact chain replays.
    let rt2 = build();
    assert_eq!(
        rt2.manager().encode_snapshot(),
        committed,
        "recovery lands on the last intact frame, gamma is lost in full"
    );
}

// ---- tentpole: delta-chain prefix consistency --------------------------

/// Truncating the delta chain at *every* byte recovers a state that is
/// exactly some frame prefix of the chain — never a blend, never a
/// half-applied frame. Byte flips behave the same way.
#[test]
fn delta_chain_damage_recovers_an_exact_frame_prefix() {
    let dir = TestDir::new("delta-prefix");
    let state = dir.file("state.bin");
    let build = || {
        Runtime::builder()
            .seed(7)
            .state_path(&state)
            .delta_checkpoints(true)
            .build()
    };
    let rt = build();
    let mk = |name: &str| {
        Context::builder(
            name,
            DataLake::from_docs([Document::new(format!("{name}.txt"), format!("{name} doc"))]),
        )
        .description(name)
        .build(&rt)
    };
    rt.manager().register("base instruction", mk("base"), 1.0);
    assert!(rt.save_state().unwrap()); // full snapshot
    let mut frame_states = vec![rt.manager().encode_snapshot()];
    for i in 0..4 {
        rt.manager()
            .register(&format!("ctx{i} instruction"), mk(&format!("c{i}")), 2.0);
        assert!(rt.save_state().unwrap()); // one delta frame each
        frame_states.push(rt.manager().encode_snapshot());
    }
    let delta = rt.delta_path().expect("delta mode has a chain path");
    let clean = fs::read(&delta).unwrap();
    assert!(!clean.is_empty(), "four delta frames on disk");

    for cut in 0..=clean.len() {
        fs::write(&delta, &clean[..cut]).unwrap();
        let rt2 = build();
        let got = rt2.manager().encode_snapshot();
        assert!(
            frame_states.contains(&got),
            "cut {cut}: recovered state must be an exact frame prefix"
        );
        drop(rt2);
    }

    for index in (0..clean.len()).step_by(5) {
        fs::write(&delta, &clean).unwrap();
        corrupt_byte(&delta, index);
        let rt2 = build();
        let got = rt2.manager().encode_snapshot();
        assert!(
            frame_states.contains(&got),
            "flip at byte {index}: damage truncates the chain, never corrupts it"
        );
    }
}

/// A Context evicted between full snapshots must not resurrect through
/// the delta chain: the eviction record replays and removes it.
#[test]
fn evicted_contexts_do_not_resurrect_through_delta_frames() {
    let dir = TestDir::new("evict-delta");
    let state = dir.file("state.bin");
    let build = || {
        Runtime::builder()
            .seed(3)
            .context_capacity(2)
            .state_path(&state)
            .delta_checkpoints(true)
            .build()
    };
    let rt = build();
    let mk = |name: &str| {
        Context::builder(
            name,
            DataLake::from_docs([Document::new(format!("{name}.txt"), format!("{name} doc"))]),
        )
        .description(name)
        .build(&rt)
    };
    rt.manager().register("alpha instruction", mk("alpha"), 1.0);
    rt.manager().register("beta instruction", mk("beta"), 5.0);
    assert!(rt.save_state().unwrap()); // full snapshot holds alpha + beta
    let full = fs::read_to_string(&state).unwrap();
    assert!(full.contains("alpha instruction"));

    // gamma evicts alpha; the checkpoint is a delta frame, so the full
    // snapshot on disk still contains alpha — only the chain's E record
    // kills it.
    rt.manager().register("gamma instruction", mk("gamma"), 9.0);
    assert!(rt.save_state().unwrap());
    let expected = rt.manager().encode_snapshot();
    assert!(
        fs::read_to_string(&state)
            .unwrap()
            .contains("alpha instruction"),
        "base snapshot still holds the evicted entry; the delta must drop it"
    );

    let rt2 = build();
    assert_eq!(rt2.manager().len(), 2);
    assert_eq!(
        rt2.manager().encode_snapshot(),
        expected,
        "evicted entry does not resurrect through the delta chain"
    );
    assert!(!rt2
        .manager()
        .encode_snapshot()
        .contains("alpha instruction"));
}

/// The two-restart invariant: a torn tail must be physically removed by
/// recovery, so records acknowledged *after* the first recovery are not
/// swallowed by the second one (an append onto a lingering torn line
/// would fail its checksum and take every later record with it).
#[test]
fn torn_tail_recovery_keeps_post_recovery_appends_across_a_second_restart() {
    let dir = TestDir::new("wal-torn-twice");
    let path = dir.file("ledger.wal");
    let mut wal = LedgerWal::open(&path);
    wal.append(&spend("acme", 0.25)).unwrap();
    wal.append(&spend("acme", 0.5)).unwrap();
    let plan = Arc::new(FailPlan::new(CrashPoint::WalTornAppend).torn_keep(13));
    let mut torn = LedgerWal::open(&path).with_fail_plan(plan);
    let mut scratch = TenantLedger::new();
    torn.recover(&mut scratch).unwrap();
    torn.append(&spend("acme", 1.0)).unwrap_err();

    // Restart 1: the torn record is dropped — and scrubbed from disk.
    let mut ledger = TenantLedger::new();
    let mut wal2 = LedgerWal::open(&path);
    let recovery = wal2.recover(&mut ledger).unwrap();
    assert!(recovery.dropped_tail);
    assert_eq!(recovery.replayed, 2);
    let post = spend("acme", 2.0);
    wal2.append(&post).unwrap();
    ledger.apply(&post);
    let expected_bits = ledger.spend(&"acme".into()).usd.to_bits();

    // Restart 2: the acknowledged post-recovery spend survives in full.
    let (bits, recovery2) = recover_usd_bits(&path, "acme");
    assert!(!recovery2.dropped_tail, "restart 1 repaired the file");
    assert_eq!(recovery2.replayed, 3);
    assert_eq!(bits, expected_bits, "no acknowledged record was lost");
}

/// Truncating or corrupting the WAL anywhere loses only a suffix: the
/// intact prefix replays exactly, byte-level damage never panics.
#[test]
fn wal_damage_loses_only_a_suffix() {
    let dir = TestDir::new("wal-damage");
    let path = dir.file("ledger.wal");
    let mut wal = LedgerWal::open(&path);
    let mut prefix_bits = Vec::new();
    let mut ledger = TenantLedger::new();
    for i in 0..4 {
        prefix_bits.push(ledger.spend(&"acme".into()).usd.to_bits());
        let record = spend("acme", 0.5 + i as f64);
        wal.append(&record).unwrap();
        ledger.apply(&record);
    }
    prefix_bits.push(ledger.spend(&"acme".into()).usd.to_bits());
    let clean = fs::read(&path).unwrap();

    for cut in 1..clean.len() {
        fs::write(&path, &clean).unwrap();
        truncate_tail(&path, cut);
        let (bits, recovery) = recover_usd_bits(&path, "acme");
        let replayed = recovery.replayed as usize;
        assert!(replayed <= 4);
        assert_eq!(
            bits, prefix_bits[replayed],
            "cut {cut}: recovered ledger is an exact record prefix"
        );
    }

    for index in (0..clean.len()).step_by(7) {
        fs::write(&path, &clean).unwrap();
        corrupt_byte(&path, index);
        let (bits, recovery) = recover_usd_bits(&path, "acme");
        let replayed = recovery.replayed as usize;
        assert!(replayed <= 4, "byte {index}");
        assert_eq!(
            bits, prefix_bits[replayed],
            "byte {index}: damage truncates, never corrupts the ledger"
        );
    }
}

// ---- tentpole: warm restart of the full service ------------------------

fn workload() -> Vec<aida::serve::QueryRequest> {
    let loads = [
        TenantLoad::new("acme", "reports")
            .instructions([
                "count identity theft reports in 2001",
                "count identity theft reports in 2024",
            ])
            .queries(4)
            .mean_interarrival(25.0),
        TenantLoad::new("bolt", "reports")
            .instructions(["count identity theft reports in 2002"])
            .queries(3)
            .mean_interarrival(40.0)
            .offset(10.0),
    ];
    open_loop(11, &loads)
}

fn restart_service(dir: &TestDir) -> QueryService {
    let rt = Runtime::builder()
        .seed(11)
        .semantic_cache(1 << 16)
        .cache_path(dir.file("semcache.bin"))
        .state_path(dir.file("state.bin"))
        .build();
    let ctx = Context::builder("lake", lake())
        .description("FTC identity theft reports by year")
        .build(&rt);
    let mut svc = QueryService::new(
        rt,
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            ..ServeConfig::default()
        },
    );
    svc.register_context("reports", ctx);
    svc.register_tenant("acme", TenantConfig::weighted(2));
    svc.register_tenant("bolt", TenantConfig::default());
    svc.attach_wal(LedgerWal::open(dir.file("ledger.wal")))
        .expect("wal recovery");
    svc
}

/// The headline proof: run the service cold, checkpoint, "crash" the
/// process, restart warm. Per-tenant dollars recover bit-identically
/// from the WAL, the restore itself spends nothing, and re-running the
/// same workload serves entirely from the restored Contexts and the
/// persisted semantic cache — at zero new dollars, with the same
/// answers.
#[test]
fn warm_restart_reproduces_per_tenant_dollars_at_zero_spend() {
    let dir = TestDir::new("warm-restart");

    // Phase 1: cold service, real dollars.
    let mut cold_svc = restart_service(&dir);
    let cold = cold_svc.run(workload());
    assert!(cold.total_cost_usd > 0.0);
    assert!(cold.wal_appends > 0);
    assert_eq!(cold.wal_replayed, 0, "nothing to replay on first boot");
    let cold_spends: Vec<(String, u64)> = cold_svc
        .tenants()
        .spends()
        .map(|(t, s)| (t.to_string(), s.usd.to_bits()))
        .collect();
    assert!(cold_svc.runtime().save_state().unwrap());
    assert!(cold_svc.runtime().save_cache().unwrap());
    drop(cold_svc); // the "crash": nothing outlives the process but disk

    // Phase 2: warm restart from disk.
    let mut warm_svc = restart_service(&dir);
    let recovery = warm_svc.wal_recovery().expect("wal attached");
    assert!(recovery.replayed > 0, "ledger replayed from the WAL");
    assert!(
        !warm_svc.runtime().manager().is_empty(),
        "contexts restored from the snapshot"
    );
    assert_eq!(
        warm_svc.runtime().cost(),
        0.0,
        "restoring state costs zero re-materialization dollars"
    );
    let warm_spends: Vec<(String, u64)> = warm_svc
        .tenants()
        .spends()
        .map(|(t, s)| (t.to_string(), s.usd.to_bits()))
        .collect();
    assert_eq!(
        cold_spends, warm_spends,
        "per-tenant dollars are bit-identical across the restart"
    );

    // Phase 3: the same workload warm — answered identically, $0 new.
    let warm = warm_svc.run(workload());
    assert_eq!(warm.completions.len(), cold.completions.len());
    assert!(warm.wal_replayed > 0);
    for (c, w) in cold.completions.iter().zip(&warm.completions) {
        assert_eq!(c.seq, w.seq);
        assert_eq!(c.tenant, w.tenant);
        assert_eq!(c.answered, w.answered, "seq {}", c.seq);
    }
    assert_eq!(
        warm.total_cost_usd,
        0.0,
        "warm re-run serves from restored Contexts + persisted cache:\n{}",
        warm.render()
    );
}

/// Every restored store entry is a live Context: its instruction still
/// matches, its documents are present, and it can serve a query end to
/// end — no dangling lineage.
#[test]
fn restored_contexts_serve_queries_without_dangling_lineage() {
    let dir = TestDir::new("lineage");
    let state = dir.file("state.bin");
    let instruction = "count identity theft reports in 2001";

    let rt = Runtime::builder().seed(7).state_path(&state).build();
    let ctx = Context::builder("lake", lake())
        .description("FTC identity theft reports by year")
        .build(&rt);
    let out1 = rt.query(&ctx).compute(instruction).run();
    rt.save_state().unwrap();

    let rt2 = Runtime::builder().seed(7).state_path(&state).build();
    assert!(!rt2.manager().is_empty());
    let (hit, score) = rt2
        .manager()
        .find_similar(instruction)
        .expect("restored entry matches its instruction");
    assert!(score > 0.99, "identical instruction embeds identically");
    assert!(
        !hit.context.is_empty(),
        "restored Context kept its documents"
    );
    assert!(hit.original_cost >= 0.0);
    let out2 = rt2.query(&hit.context).compute(instruction).run();
    assert_eq!(out1.answer.is_some(), out2.answer.is_some());
}

// ---- satellite: eviction × persistence ---------------------------------

/// A Context evicted by the capacity bound must not resurrect from disk:
/// checkpoints written after the eviction drop the entry, and even a
/// stale over-capacity snapshot is trimmed on load.
#[test]
fn evicted_contexts_do_not_resurrect_after_reload() {
    let dir = TestDir::new("evict-reload");
    let state = dir.file("state.bin");
    let rt = Runtime::builder()
        .seed(3)
        .context_capacity(2)
        .state_path(&state)
        .build();
    let mk = |name: &str| {
        Context::builder(
            name,
            DataLake::from_docs([Document::new(format!("{name}.txt"), format!("{name} doc"))]),
        )
        .description(name)
        .build(&rt)
    };
    rt.manager().register("alpha instruction", mk("alpha"), 1.0);
    rt.manager().register("beta instruction", mk("beta"), 5.0);
    rt.save_state().unwrap();
    let stale = fs::read_to_string(&state).unwrap();
    assert!(stale.contains("alpha instruction"));

    // gamma arrives; alpha is the cheapest to recreate and is evicted.
    rt.manager().register("gamma instruction", mk("gamma"), 9.0);
    assert_eq!(rt.manager().len(), 2);
    rt.save_state().unwrap();
    let fresh = fs::read_to_string(&state).unwrap();
    assert!(
        !fresh.contains("alpha instruction"),
        "checkpoint after eviction drops the evicted entry"
    );

    let rt2 = Runtime::builder()
        .seed(3)
        .context_capacity(2)
        .state_path(&state)
        .build();
    assert_eq!(rt2.manager().len(), 2);
    assert_eq!(rt2.manager().encode_snapshot(), fresh);

    // Loading the stale pre-eviction snapshot into a smaller manager
    // still cannot exceed the capacity bound.
    let rt3 = Runtime::builder().seed(3).context_capacity(1).build();
    rt3.manager()
        .load_snapshot(&stale, &|id, lake, desc| {
            Context::builder(id, lake).description(desc).build(&rt3)
        })
        .unwrap();
    assert_eq!(rt3.manager().len(), 1, "stale snapshot trimmed on load");
}

// ---- satellite: exact LRU tick restore ---------------------------------

/// Snapshot restore preserves the LRU clock *exactly*: per-entry
/// `last_used` ticks and the global tick counter survive the round-trip
/// byte-for-byte, the restored clock continues where the original left
/// off, and recency-sensitive eviction agrees with the restored order.
/// A restore that renumbered entries 1..n would pass a length check but
/// silently reorder future evictions.
#[test]
fn lru_tick_ordering_restores_tick_identically() {
    let rt = Runtime::builder().seed(11).build();
    let mk = |name: &str| {
        Context::builder(
            name,
            DataLake::from_docs([Document::new(format!("{name}.txt"), format!("{name} doc"))]),
        )
        .description(name)
        .build(&rt)
    };
    // Equal costs so eviction order is decided purely by recency.
    rt.manager().register("alpha instruction", mk("alpha"), 1.0);
    rt.manager().register("beta instruction", mk("beta"), 1.0);
    rt.manager().register("gamma instruction", mk("gamma"), 1.0);
    // Uneven recency: alpha and gamma get re-used, so the tick order is
    // beta(2) < alpha(4) < gamma(5) with the clock standing at 5.
    assert!(rt.manager().reuse("alpha instruction", 0.99).is_some());
    assert!(rt.manager().reuse("gamma instruction", 0.99).is_some());
    let snap = rt.manager().encode_snapshot();

    let rt2 = Runtime::builder().seed(11).build();
    rt2.manager()
        .load_snapshot(&snap, &|id, lake, desc| {
            Context::builder(id, lake).description(desc).build(&rt2)
        })
        .unwrap();
    // Tick-identical: re-encoding the restored store reproduces the
    // snapshot byte-for-byte, so every last_used and the global clock
    // survived exactly — not merely the relative order.
    assert_eq!(rt2.manager().encode_snapshot(), snap);

    // The restored clock continues where the original left off: the same
    // post-restore operation lands the same new tick on both managers,
    // so a restored replica cannot diverge from the uninterrupted one.
    assert!(rt.manager().reuse("beta instruction", 0.99).is_some());
    assert!(rt2.manager().reuse("beta instruction", 0.99).is_some());
    assert_eq!(
        rt2.manager().encode_snapshot(),
        rt.manager().encode_snapshot()
    );

    // Recency-sensitive eviction honors the restored ticks: beta is the
    // least recently used entry in `snap`, so it is the one displaced.
    let rt3 = Runtime::builder().seed(11).context_capacity(3).build();
    rt3.manager()
        .load_snapshot(&snap, &|id, lake, desc| {
            Context::builder(id, lake).description(desc).build(&rt3)
        })
        .unwrap();
    let delta = Context::builder(
        "delta",
        DataLake::from_docs([Document::new("delta.txt", "delta doc")]),
    )
    .description("delta")
    .build(&rt3);
    rt3.manager().register("delta instruction", delta, 1.0);
    let after = rt3.manager().encode_snapshot();
    assert!(
        !after.contains("beta instruction"),
        "least-recent restored entry is the eviction victim"
    );
    assert!(after.contains("alpha instruction"));
    assert!(after.contains("gamma instruction"));
}

// ---- satellite: checkpoint-interval behavior ---------------------------

/// With `checkpoint_interval(n)`, the runtime checkpoints itself every
/// `n` agentic operations — no explicit `save_state` call needed for the
/// state to survive a crash.
#[test]
fn interval_checkpoints_survive_an_uncheckpointed_crash() {
    let dir = TestDir::new("interval");
    let state = dir.file("state.bin");
    let rt = Runtime::builder()
        .seed(7)
        .state_path(&state)
        .checkpoint_interval(1)
        .build();
    let ctx = Context::builder("lake", lake())
        .description("FTC identity theft reports by year")
        .build(&rt);
    let _ = rt
        .query(&ctx)
        .compute("count identity theft reports in 2001")
        .run();
    drop(rt); // crash without an explicit save

    assert!(state.exists(), "interval checkpoint wrote the state file");
    let rt2 = Runtime::builder().seed(7).state_path(&state).build();
    assert!(
        !rt2.manager().is_empty(),
        "state survived via the ops-interval checkpoint"
    );
}

// ---- satellite: CI dump for same-seed diffing --------------------------

/// A fixed crash/recovery scenario whose recovered state is exported as
/// JSONL when `AIDA_DURABILITY_DUMP` is set. CI runs this twice at the
/// same seed and diffs the two dumps byte-for-byte.
#[test]
fn recovered_state_dump_is_deterministic() {
    let dir = TestDir::new("dump");
    let mut svc = restart_service(&dir);
    let report = svc.run(workload());
    assert!(report.total_cost_usd > 0.0);
    svc.runtime().save_state().unwrap();
    svc.runtime().save_cache().unwrap();
    drop(svc);

    let svc2 = restart_service(&dir);
    let recovery = svc2.wal_recovery().expect("wal attached");
    let state_text = fs::read_to_string(dir.file("state.bin")).unwrap();

    let mut dump = String::new();
    dump.push_str(&format!(
        "{{\"type\":\"recovery\",\"replayed\":{},\"skipped\":{},\"snapshot_loaded\":{},\"next_seq\":{}}}\n",
        recovery.replayed, recovery.skipped, recovery.snapshot_loaded, recovery.next_seq
    ));
    dump.push_str(&format!(
        "{{\"type\":\"contexts\",\"restored\":{},\"snapshot_fnv64\":\"{:016x}\"}}\n",
        svc2.runtime().manager().len(),
        aida::llm::snapshot::fnv64(state_text.as_bytes())
    ));
    for (tenant, spend) in svc2.tenants().spends() {
        dump.push_str(&format!(
            "{{\"type\":\"tenant\",\"tenant\":\"{}\",\"usd_bits\":\"{:016x}\",\"tokens\":{},\"calls\":{},\"cache_hits\":{}}}\n",
            tenant.as_str(),
            spend.usd.to_bits(),
            spend.tokens,
            spend.calls,
            spend.cache_hits
        ));
    }
    assert!(dump.contains("\"type\":\"tenant\""));

    if let Ok(out_dir) = std::env::var("AIDA_DURABILITY_DUMP") {
        fs::create_dir_all(&out_dir).unwrap();
        fs::write(
            Path::new(&out_dir).join("recovered_state.jsonl"),
            dump.as_bytes(),
        )
        .unwrap();
    }
}

// ---- satellite: property tests -----------------------------------------

mod props {
    use super::*;
    use proptest::prelude::*;

    fn record_strategy() -> impl Strategy<Value = LedgerRecord> {
        let tenant = "[a-z\t\\\\ ]{1,10}";
        prop_oneof![
            tenant.prop_map(|t| LedgerRecord::Admit {
                tenant: TenantId::new(t)
            }),
            (
                (tenant, any::<u64>()),
                (0u64..100_000, 0u64..64),
                (0u64..16, 0u64..16)
            )
                .prop_map(|((t, bits), (tokens, calls), (hits, coalesced))| {
                    LedgerRecord::Spend {
                        tenant: TenantId::new(t),
                        usd: f64::from_bits(bits),
                        tokens,
                        calls,
                        cache_hits: hits,
                        cache_coalesced: coalesced,
                    }
                }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every record round-trips its codec exactly (dollars compared
        /// by bits, so NaN payloads round-trip too).
        #[test]
        fn ledger_record_codec_round_trips(record in record_strategy()) {
            let encoded = record.encode();
            prop_assert!(!encoded.contains('\n'));
            let decoded = LedgerRecord::decode(&encoded).unwrap();
            prop_assert_eq!(decoded.encode(), encoded);
        }

        /// An arbitrary record sequence written through the WAL replays
        /// in order and bit-identically, and replay is deterministic:
        /// two recoveries from the same bytes agree exactly.
        #[test]
        fn wal_replay_is_order_deterministic(
            records in prop::collection::vec(record_strategy(), 1..12)
        ) {
            let dir = TestDir::new("prop-wal");
            let path = dir.file("ledger.wal");
            let mut wal = LedgerWal::open(&path);
            let mut direct = TenantLedger::new();
            for record in &records {
                wal.append(record).unwrap();
                direct.apply(record);
            }
            let recover = || {
                let mut ledger = TenantLedger::new();
                let mut w = LedgerWal::open(&path);
                let recovery = w.recover(&mut ledger).unwrap();
                let spends: Vec<(String, u64, u64, u64)> = ledger
                    .spends()
                    .map(|(t, s)| (t.to_string(), s.usd.to_bits(), s.tokens, s.calls))
                    .collect();
                (spends, recovery.replayed, recovery.next_seq)
            };
            let a = recover();
            let b = recover();
            prop_assert_eq!(&a, &b, "replay is deterministic");
            prop_assert_eq!(a.1, records.len() as u64);
            let expected: Vec<(String, u64, u64, u64)> = direct
                .spends()
                .map(|(t, s)| (t.to_string(), s.usd.to_bits(), s.tokens, s.calls))
                .collect();
            prop_assert_eq!(a.0, expected, "replayed ledger == directly applied ledger");
        }

        /// Flipping any single byte of a framed snapshot is detected:
        /// decode fails rather than returning altered content.
        #[test]
        fn snapshot_single_byte_corruption_is_detected(
            body in "[a-z0-9\t .]{0,80}",
            index in 0usize..4096,
        ) {
            let text = aida::llm::snapshot::encode_file("prop-magic v1", &body);
            let mut bytes = text.clone().into_bytes();
            let i = index % bytes.len();
            bytes[i] ^= 0x5a;
            prop_assume!(bytes != text.as_bytes());
            let verdict = match String::from_utf8(bytes) {
                Ok(corrupt) => aida::llm::snapshot::decode_file("prop-magic v1", &corrupt)
                    .err()
                    .map(|_| true)
                    .unwrap_or(false),
                Err(_) => true, // invalid UTF-8 is detection too
            };
            prop_assert!(verdict, "flip at byte {} must be detected", i);
        }

        /// The ContextManager snapshot round-trips arbitrary
        /// instructions, descriptions, and document content —
        /// re-encoding the restored store reproduces the file
        /// byte-for-byte.
        #[test]
        fn manager_snapshot_round_trips_arbitrary_content(
            entries in prop::collection::vec(
                ("[a-z\t\n\\\\\\[\\], ]{1,24}", "[a-zA-Z0-9 .,\t]{0,40}", 1.0f64..100.0),
                1..5,
            )
        ) {
            let rt = Runtime::builder().seed(5).build();
            for (i, (instruction, content, cost)) in entries.iter().enumerate() {
                let lake = DataLake::from_docs([Document::new(format!("d{i}.txt"), content)]);
                let ctx = Context::builder(format!("ctx{i}"), lake)
                    .description(format!("desc {i}"))
                    .build(&rt);
                rt.manager().register(instruction, ctx, *cost);
            }
            let snap = rt.manager().encode_snapshot();

            let rt2 = Runtime::builder().seed(5).build();
            let restored = rt2
                .manager()
                .load_snapshot(&snap, &|id, lake, desc| {
                    Context::builder(id, lake).description(desc).build(&rt2)
                })
                .unwrap();
            prop_assert_eq!(restored, rt.manager().len());
            prop_assert_eq!(rt2.manager().encode_snapshot(), snap);
        }

        /// Group-committed, segmented WALs under arbitrary tail damage
        /// lose only a record *suffix*: the recovered ledger equals the
        /// direct application of exactly the first `replayed` records —
        /// no double-spend, no reordering — and two recoveries from the
        /// same damage agree bit-for-bit.
        #[test]
        fn segmented_batch_wal_damage_loses_only_a_suffix(
            batches in prop::collection::vec(
                prop::collection::vec(record_strategy(), 1..5),
                1..5,
            ),
            segment_records in 0usize..4,
            cut in 0usize..4096,
        ) {
            let dir = TestDir::new("prop-seg");
            let path = dir.file("ledger.wal");
            let mut wal = LedgerWal::open(&path).segment_records(segment_records);
            let mut flat = Vec::new();
            for batch in &batches {
                wal.append_batch(batch).unwrap();
                flat.extend(batch.iter().cloned());
            }
            drop(wal);

            // Damage the *tail* file only; sealed segments stay intact,
            // so the loss is bounded by the unsealed suffix. (The tail
            // may not exist when the last append sealed it away.)
            let tail = fs::read(&path).unwrap_or_default();
            let keep = cut % (tail.len() + 1);
            fs::write(&path, &tail[..keep]).unwrap();

            let recover = || {
                let mut ledger = TenantLedger::new();
                let mut w = LedgerWal::open(&path).segment_records(segment_records);
                let recovery = w.recover(&mut ledger).unwrap();
                let spends: Vec<(String, u64, u64, u64)> = ledger
                    .spends()
                    .map(|(t, s)| (t.to_string(), s.usd.to_bits(), s.tokens, s.calls))
                    .collect();
                (spends, recovery.replayed, recovery.next_seq)
            };
            let a = recover();
            let b = recover();
            prop_assert_eq!(&a, &b, "recovery after damage is deterministic");

            let replayed = a.1 as usize;
            prop_assert!(replayed <= flat.len());
            let mut prefix = TenantLedger::new();
            for record in &flat[..replayed] {
                prefix.apply(record);
            }
            let expected: Vec<(String, u64, u64, u64)> = prefix
                .spends()
                .map(|(t, s)| (t.to_string(), s.usd.to_bits(), s.tokens, s.calls))
                .collect();
            prop_assert_eq!(
                a.0, expected,
                "recovered ledger == prefix of {} records", replayed
            );
        }

        /// Cutting the delta chain at an arbitrary byte recovers a state
        /// that is exactly one of the checkpointed frame states — the
        /// chain replays a frame prefix or nothing, never a blend.
        #[test]
        fn delta_chain_random_cut_recovers_a_checkpointed_state(
            saves in 1usize..5,
            cut in 0usize..8192,
        ) {
            let dir = TestDir::new("prop-delta");
            let state = dir.file("state.bin");
            let build = || {
                Runtime::builder()
                    .seed(13)
                    .state_path(&state)
                    .delta_checkpoints(true)
                    .build()
            };
            let rt = build();
            let mk = |name: &str| {
                Context::builder(
                    name,
                    DataLake::from_docs([Document::new(
                        format!("{name}.txt"),
                        format!("{name} doc"),
                    )]),
                )
                .description(name)
                .build(&rt)
            };
            rt.manager().register("base instruction", mk("base"), 1.0);
            prop_assert!(rt.save_state().unwrap());
            let mut frame_states = vec![rt.manager().encode_snapshot()];
            for i in 0..saves {
                rt.manager()
                    .register(&format!("ctx{i} instruction"), mk(&format!("c{i}")), 2.0);
                prop_assert!(rt.save_state().unwrap());
                frame_states.push(rt.manager().encode_snapshot());
            }
            let delta = rt.delta_path().expect("delta mode has a chain path");
            drop(rt);

            let chain = fs::read(&delta).unwrap();
            let keep = cut % (chain.len() + 1);
            fs::write(&delta, &chain[..keep]).unwrap();

            let rt2 = build();
            let got = rt2.manager().encode_snapshot();
            prop_assert!(
                frame_states.contains(&got),
                "cut at byte {} must recover a checkpointed frame state", keep
            );
        }
    }
}
