//! Integration tests for the semantic call cache: warm restarts from a
//! disk-spilled snapshot, interaction with ContextManager eviction,
//! corrupted-snapshot rejection, and byte-identical seeded replay with
//! the cache enabled.

use aida::llm::{CacheConfig, SemanticCache, SnapshotError};
use aida::prelude::*;
use aida_testkit::TestDir;
use std::path::Path;

fn lake() -> DataLake {
    DataLake::from_docs([
        Document::new("report_2001.txt", "identity theft reports in 2001: 86250"),
        Document::new("report_2002.txt", "identity theft reports in 2002: 161977"),
        Document::new("report_2024.txt", "identity theft reports in 2024: 1135291"),
    ])
}

fn build_runtime(seed: u64, path: &Path) -> Runtime {
    Runtime::builder()
        .seed(seed)
        .semantic_cache(4096)
        .cache_path(path)
        .build()
}

/// The acceptance headline: restart from a disk-spilled cache and
/// reproduce the warm answers with zero additional LLM spend.
#[test]
fn warm_restart_from_snapshot_costs_zero() {
    let dir = TestDir::new("cache-warm-restart");
    let path = dir.file("warm_restart.snap");

    let cold_rt = build_runtime(11, &path);
    let ctx = Context::builder("lake", lake())
        .description("FTC identity theft reports by year")
        .build(&cold_rt);
    let cold = cold_rt
        .query(&ctx)
        .compute("count identity theft reports in 2001")
        .run();
    let cold_cost = cold_rt.cost();
    assert!(cold_cost > 0.0, "the cold run pays for its LLM calls");
    assert!(cold_rt.save_cache().unwrap(), "snapshot written");

    // A brand-new process would start exactly like this: same config,
    // same snapshot path, nothing shared in memory.
    let warm_rt = build_runtime(11, &path);
    assert!(
        warm_rt.cache_stats().unwrap().entries > 0,
        "snapshot loaded on startup"
    );
    let ctx = Context::builder("lake", lake())
        .description("FTC identity theft reports by year")
        .build(&warm_rt);
    let warm = warm_rt
        .query(&ctx)
        .compute("count identity theft reports in 2001")
        .run();
    assert_eq!(
        format!("{:?}", warm.answer),
        format!("{:?}", cold.answer),
        "warm answer identical to cold"
    );
    assert_eq!(
        warm_rt.cost(),
        0.0,
        "every LLM call replays from the snapshot for free"
    );
    let stats = warm_rt.cache_stats().unwrap();
    assert!(stats.hits > 0);
    assert_eq!(stats.misses, 0, "no call fell through to the simulator");
}

/// Satellite (d): ContextManager eviction must not invalidate cache
/// entries. A re-materialized Context replays its semantic calls from
/// the cache at zero incremental dollars.
#[test]
fn context_eviction_preserves_cache_entries() {
    let rt = Runtime::builder()
        .seed(13)
        .context_capacity(1)
        .semantic_cache(4096)
        .build();
    let reports_ctx = Context::builder("lake", lake())
        .description("FTC identity theft reports by year")
        .build(&rt);
    let other_ctx = Context::builder(
        "memos",
        DataLake::from_docs([Document::new("memo.txt", "quarterly memo: revenue up 4%")]),
    )
    .description("internal quarterly memos")
    .build(&rt);

    let first = rt
        .query(&reports_ctx)
        .compute("count identity theft reports in 2001")
        .run();
    let entries_after_first = rt.cache_stats().unwrap().entries;
    assert!(entries_after_first > 0);

    // Capacity 1: this query's materialized Context evicts the first's.
    let _ = rt.query(&other_ctx).compute("summarize the memo").run();
    assert!(
        rt.manager().evictions() > 0,
        "the capacity bound actually evicted"
    );
    assert!(
        rt.cache_stats().unwrap().entries >= entries_after_first,
        "eviction dropped Contexts, not cache entries"
    );

    // Re-running the first query re-materializes the Context, but every
    // LLM call it makes replays from the cache.
    let cost_before = rt.cost();
    let again = rt
        .query(&reports_ctx)
        .compute("count identity theft reports in 2001")
        .run();
    assert_eq!(
        format!("{:?}", again.answer),
        format!("{:?}", first.answer),
        "re-materialized Context reproduces the answer"
    );
    assert_eq!(
        rt.cost(),
        cost_before,
        "zero incremental dollars after eviction"
    );
}

/// A corrupted snapshot is rejected wholesale and the service starts
/// cold instead of serving garbled answers.
#[test]
fn corrupted_snapshot_is_rejected_and_runtime_starts_cold() {
    let dir = TestDir::new("cache-corrupted");
    let path = dir.file("corrupted.snap");

    let rt = build_runtime(17, &path);
    let ctx = Context::builder("lake", lake())
        .description("FTC identity theft reports by year")
        .build(&rt);
    let _ = rt
        .query(&ctx)
        .compute("count identity theft reports in 2002")
        .run();
    assert!(rt.save_cache().unwrap());

    // Garble a byte in the middle of the body.
    let mid = std::fs::read(&path).unwrap().len() / 2;
    aida_testkit::corrupt_byte(&path, mid);

    // Loading directly reports a typed format error...
    let probe = SemanticCache::new(CacheConfig {
        capacity: 4096,
        ..CacheConfig::default()
    });
    match probe.load(&path) {
        Err(SnapshotError::Format(_)) => {}
        other => panic!("expected a format rejection, got {other:?}"),
    }
    assert!(probe.is_empty(), "a rejected snapshot admits nothing");

    // ...and a runtime built over the corrupt snapshot starts cold but
    // keeps serving.
    let cold_rt = build_runtime(17, &path);
    assert_eq!(cold_rt.cache_stats().unwrap().entries, 0);
    let ctx = Context::builder("lake", lake())
        .description("FTC identity theft reports by year")
        .build(&cold_rt);
    let outcome = cold_rt
        .query(&ctx)
        .compute("count identity theft reports in 2002")
        .run();
    assert!(outcome.answer.is_some());
    assert!(cold_rt.cost() > 0.0, "cold service recomputes and bills");
}

/// Fixed-seed runs with the cache enabled are byte-identical, including
/// the full observability trace — caching must not perturb replay.
#[test]
fn seeded_replay_with_cache_is_byte_identical() {
    let run = || {
        let rt = Runtime::builder()
            .seed(19)
            .semantic_cache(4096)
            .tracing(true)
            .build();
        let ctx = Context::builder("lake", lake())
            .description("FTC identity theft reports by year")
            .build(&rt);
        let mut answers = String::new();
        for instruction in [
            "count identity theft reports in 2001",
            "count identity theft reports in 2024",
            "count identity theft reports in 2001",
        ] {
            let outcome = rt.query(&ctx).compute(instruction).run();
            answers.push_str(&format!("{:?}\n", outcome.answer));
        }
        (answers, rt.recorder().export_jsonl(), rt.cost())
    };
    let (answers_a, trace_a, cost_a) = run();
    let (answers_b, trace_b, cost_b) = run();
    assert_eq!(answers_a, answers_b);
    assert_eq!(trace_a, trace_b, "traces are byte-identical");
    assert_eq!(cost_a, cost_b);
    assert!(
        trace_a.contains("cache.hit"),
        "cache counters flow into the trace"
    );
}

/// Cold-then-warm on the same runtime: the repeated query is strictly
/// cheaper (here: free) and the answer identical.
#[test]
fn repeated_query_is_strictly_cheaper_with_identical_answer() {
    let rt = Runtime::builder().seed(23).semantic_cache(4096).build();
    let ctx = Context::builder("lake", lake())
        .description("FTC identity theft reports by year")
        .build(&rt);
    let cold = rt
        .query(&ctx)
        .compute("count identity theft reports in 2024")
        .run();
    let cold_cost = rt.cost();
    assert!(cold_cost > 0.0);
    let warm = rt
        .query(&ctx)
        .compute("count identity theft reports in 2024")
        .run();
    assert_eq!(format!("{:?}", warm.answer), format!("{:?}", cold.answer));
    assert_eq!(rt.cost(), cold_cost, "the warm query added no spend");
}
