//! The unified tracing layer, end to end: span trees whose aggregates
//! reconcile with the billed totals, deterministic JSONL export, and
//! reuse events that appear exactly when Context reuse is enabled.

use aida::core::Context;
use aida::obs::SpanKind;
use aida::prelude::*;
use aida_synth::legal;

/// The Table 1 query, traced: per-operator dollars and virtual seconds
/// must sum to the query root's totals, and the root must agree with the
/// run's own accounting.
#[test]
fn explain_analyze_totals_reconcile_with_the_run() {
    let workload = legal::generate(1);
    let (run, recorder) = aida::eval::run_pz_compute_traced(&workload, 1);
    let trace = recorder.trace();

    let roots = trace.roots();
    assert_eq!(roots.len(), 1, "one query span: {roots:?}");
    let root = roots[0];
    assert_eq!(trace.spans[root].kind, SpanKind::Query);

    // Root inclusive $ equals the run's cost.
    let root_totals = trace.inclusive(root);
    assert!(
        (root_totals.cost_usd - run.cost).abs() < 1e-9,
        "root ${} vs run ${}",
        root_totals.cost_usd,
        run.cost
    );
    // Root duration equals the run's virtual seconds.
    let root_duration = trace.spans[root].duration_s();
    assert!(
        (root_duration - run.time).abs() < 1e-9,
        "root {root_duration}s vs run {}s",
        run.time
    );

    // Per-operator $ and virtual seconds sum to the query totals: the
    // query span has no own LLM calls here, so its children's inclusive
    // costs and durations partition it.
    let children = trace.children(root);
    assert!(!children.is_empty());
    let child_cost: f64 = children.iter().map(|&c| trace.inclusive(c).cost_usd).sum();
    assert!(
        (child_cost - root_totals.cost_usd).abs() < 1e-9,
        "children ${child_cost} vs root ${}",
        root_totals.cost_usd
    );
    let child_time: f64 = children.iter().map(|&c| trace.spans[c].duration_s()).sum();
    assert!(
        (child_time - root_duration).abs() < 1e-6,
        "children {child_time}s vs root {root_duration}s"
    );

    // The tree reaches the physical layer and the report renders it.
    assert!(trace.spans.iter().any(|s| s.kind == SpanKind::PhysicalOp));
    assert!(trace.spans.iter().any(|s| s.kind == SpanKind::AgentStep));
    let report = trace.explain_analyze();
    assert!(report.starts_with("EXPLAIN ANALYZE\n"));
    assert!(report.contains("query"));
    assert!(report.contains("physical_op"));
    assert!(report.contains("llm.calls"));
}

/// Two runs of the Table 1 query at the same seed export byte-identical
/// JSONL traces (the recorder only ever sees the virtual clock).
#[test]
fn traces_are_deterministic_across_runs() {
    let workload = legal::generate(1);
    let (run_a, rec_a) = aida::eval::run_pz_compute_traced(&workload, 1);
    let (run_b, rec_b) = aida::eval::run_pz_compute_traced(&workload, 1);
    assert_eq!(run_a.answer, run_b.answer);
    let jsonl_a = rec_a.trace().to_jsonl();
    let jsonl_b = rec_b.trace().to_jsonl();
    assert!(!jsonl_a.is_empty());
    assert_eq!(jsonl_a, jsonl_b, "same seed must export identical traces");
}

/// Tracing must not perturb the simulation: a traced run and an untraced
/// run at the same seed produce the same answer, cost, and time.
#[test]
fn tracing_never_changes_the_run() {
    let workload = legal::generate(2);
    let untraced = aida::eval::run_pz_compute(&workload, 2);
    let (traced, _) = aida::eval::run_pz_compute_traced(&workload, 2);
    assert_eq!(untraced.answer, traced.answer);
    assert_eq!(untraced.cost, traced.cost);
    assert_eq!(untraced.time, traced.time);
}

fn legal_ctx(rt: &Runtime, seed: u64) -> Context {
    let workload = legal::generate(seed);
    workload.install_oracle(&rt.env().llm);
    Context::builder("legal", workload.lake.clone())
        .description(workload.description.clone())
        .with_vector_index()
        .build(rt)
}

/// With Context reuse on, the second query's trace carries a reuse hit
/// (and the first a miss); with reuse off, no reuse events exist at all.
#[test]
fn reuse_events_follow_the_reuse_switch() {
    let rt = Runtime::builder()
        .seed(3)
        .tracing(true)
        .context_reuse(true)
        .build();
    let ctx = legal_ctx(&rt, 3);
    let _ = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2001")
        .run();
    let _ = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2024")
        .run();
    let jsonl = rt.recorder().trace().to_jsonl();
    assert!(
        jsonl.contains("\"event\":\"reuse_miss\""),
        "first lookup misses"
    );
    assert!(
        jsonl.contains("\"event\":\"reuse_hit\""),
        "second lookup hits"
    );
    let (hits, misses) = rt.reuse_stats();
    assert!(hits >= 1, "hits {hits}");
    assert!(misses >= 1, "misses {misses}");

    let rt = Runtime::builder()
        .seed(3)
        .tracing(true)
        .context_reuse(false)
        .build();
    let ctx = legal_ctx(&rt, 3);
    let _ = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2001")
        .run();
    let _ = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2024")
        .run();
    let jsonl = rt.recorder().trace().to_jsonl();
    assert!(
        !jsonl.contains("reuse_hit"),
        "no reuse events when disabled"
    );
    assert!(!jsonl.contains("reuse_miss"));
    assert_eq!(rt.reuse_stats(), (0, 0));
}

/// SQL over materialized findings shows up as `sql` spans and events.
#[test]
fn sql_statements_are_traced() {
    let rt = Runtime::builder().seed(4).tracing(true).build();
    let ctx = legal_ctx(&rt, 4);
    let _ = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2001")
        .run();
    let tables = rt.table_names();
    assert!(!tables.is_empty());
    let out = rt
        .sql(&format!("SELECT COUNT(*) AS n FROM {}", tables[0]))
        .unwrap();
    assert_eq!(out.len(), 1);
    let trace = rt.recorder().trace();
    assert!(trace.spans.iter().any(|s| s.kind == SpanKind::Sql));
    assert_eq!(trace.counters.get("sql.statements"), Some(&1));
    assert!(trace.to_jsonl().contains("\"event\":\"sql\""));
}

/// A disabled recorder records nothing and exports an empty trace.
#[test]
fn disabled_recorder_is_inert() {
    let rt = Runtime::builder().seed(5).build();
    assert!(!rt.recorder().is_enabled());
    let ctx = legal_ctx(&rt, 5);
    let _ = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2001")
        .run();
    let trace = rt.recorder().trace();
    assert!(trace.spans.is_empty());
    assert!(trace.counters.is_empty());
}

fn health_service(seed: u64) -> aida::serve::QueryService {
    use aida::serve::{QueryService, ServeConfig, TenantConfig};
    let rt = Runtime::builder().seed(seed).tracing(true).build();
    let lake = DataLake::from_docs([
        Document::new("report_2001.txt", "identity theft reports in 2001: 86250"),
        Document::new("report_2024.txt", "identity theft reports in 2024: 1135291"),
    ]);
    let ctx = Context::builder("lake", lake)
        .description("FTC identity theft reports by year")
        .build(&rt);
    let mut svc = QueryService::new(rt, ServeConfig::default());
    svc.register_context("reports", ctx);
    svc.register_tenant(
        "acme",
        TenantConfig::weighted(2)
            .p99_latency(1200.0)
            .usd_per_query(1.0),
    );
    svc.register_tenant(
        "bolt",
        TenantConfig::default()
            .p99_latency(1200.0)
            // Ceiling far below the real per-query spend: bolt must
            // breach its cost SLO deterministically.
            .usd_per_query(1e-6),
    );
    svc
}

/// The health surface is part of the deterministic contract: two runs at
/// the same seed must export byte-identical `health.jsonl` content, with
/// populated per-tenant windows and the deterministic cost-SLO breach.
#[test]
fn health_jsonl_is_byte_identical_across_runs() {
    use aida::serve::{open_loop, TenantLoad};
    let run = || {
        let mut svc = health_service(17);
        let loads = [
            TenantLoad::new("acme", "reports")
                .instructions([
                    "count identity theft reports in 2001",
                    "count identity theft reports in 2024",
                ])
                .queries(4)
                .mean_interarrival(25.0),
            TenantLoad::new("bolt", "reports")
                .instructions(["count identity theft reports in 2024"])
                .queries(3)
                .mean_interarrival(40.0)
                .offset(10.0),
        ];
        let report = svc.run(open_loop(17, &loads));
        assert!(!report.completions.is_empty());
        report
    };
    let a = run();
    let b = run();

    let health = a.health_jsonl();
    assert_eq!(health, b.health_jsonl(), "health export is byte-identical");
    assert!(health.contains("\"tenant\":\"acme\""));
    assert!(health.contains("\"tenant\":\"bolt\""));
    assert!(health.contains("\"type\":\"health_summary\""));
    assert!(!a.health.is_empty(), "per-tenant health rows are populated");
    let bolt = a
        .health
        .iter()
        .find(|h| h.tenant.as_str() == "bolt")
        .expect("bolt health row");
    assert!(
        bolt.slo.alerting,
        "bolt's impossible cost ceiling must trip its SLO: {:?}",
        bolt.slo
    );
    let acme = a
        .health
        .iter()
        .find(|h| h.tenant.as_str() == "acme")
        .expect("acme health row");
    assert!(
        !acme.slo.alerting,
        "acme stays within target: {:?}",
        acme.slo
    );
    assert!(acme.latency.count > 0, "acme latency window has samples");
}

/// An injected [`CrashPoint`] must leave a parseable flight dump behind:
/// a header line naming the trigger, then the last `FLIGHT_CAPACITY`
/// records (well above the 64-event forensic floor), ending with the
/// crash-point record itself.
#[test]
fn crash_point_dumps_the_flight_ring() {
    use aida::llm::snapshot::{CrashPoint, FailPlan};
    use aida::serve::{LedgerRecord, LedgerWal};
    use aida_testkit::TestDir;
    use std::sync::Arc;

    let dir = TestDir::new("flight-dump");
    let dump_path = dir.file("flight.jsonl");
    let rt = Runtime::builder()
        .seed(7)
        .tracing(true)
        .flight_dump(&dump_path)
        .build();
    // Overfill the ring so the dump proves both retention and eviction.
    for i in 0..300 {
        rt.recorder().flight("test.load", "tick", format!("i={i}"));
    }

    let plan = FailPlan::new(CrashPoint::WalBeforeAppend).with_recorder(rt.recorder().clone());
    let mut wal = LedgerWal::open(dir.file("ledger.wal")).with_fail_plan(Arc::new(plan));
    let err = wal.append(&LedgerRecord::Admit {
        tenant: aida::serve::TenantId::new("acme"),
    });
    assert!(err.is_err(), "armed crash point fails the append");

    let dump = std::fs::read_to_string(&dump_path).expect("crash point wrote the flight dump");
    let lines: Vec<&str> = dump.lines().collect();
    let capacity = aida::obs::FLIGHT_CAPACITY;
    assert!(
        lines[0].starts_with("{\"flight\":\"crash_point\""),
        "header names the trigger: {}",
        lines[0]
    );
    assert!(lines[0].contains(&format!("\"events\":{capacity}")));
    assert!(lines[0].contains(&format!("\"capacity\":{capacity}")));
    assert_eq!(lines.len(), 1 + capacity, "header plus one line per record");
    assert!(capacity >= 64, "acceptance floor: at least 64 events kept");
    assert!(
        lines[lines.len() - 1].contains("\"kind\":\"crash_point\""),
        "the crash record itself is the newest entry: {}",
        lines[lines.len() - 1]
    );
    // Every body line is a well-formed single JSON object.
    for line in &lines[1..] {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
}

mod props {
    use aida::obs::SlidingWindow;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Window rotation never drops or double-counts a sample at slot
        /// boundaries: for any slot geometry and any nondecreasing
        /// sample times (half-slot increments land exactly on slot
        /// edges), a full-span query returns precisely the samples whose
        /// slot index falls in the trailing ring span — each exactly
        /// once, in recording order.
        #[test]
        fn rotation_never_drops_or_double_counts(
            slot_kind in 0usize..3,
            slots in 1usize..6,
            steps in prop::collection::vec(0u32..4, 1..48),
        ) {
            let slot_s = [0.5, 1.0, 2.5][slot_kind];
            let mut w = SlidingWindow::new(slot_s, slots);
            let mut t = 0.0;
            let mut samples = Vec::new();
            for (i, half_slots) in steps.iter().enumerate() {
                t += f64::from(*half_slots) * (slot_s / 2.0);
                w.record(t, i as f64);
                samples.push((t, i as f64));
            }
            let now = t;
            let now_idx = w.slot_index(now);
            // The ring spans the last `slots` slot indices ending at now.
            let first_idx = now_idx.saturating_sub(slots as u64 - 1);
            let expected: Vec<f64> = samples
                .iter()
                .filter(|(ts, _)| w.slot_index(*ts) >= first_idx)
                .map(|(_, v)| *v)
                .collect();
            prop_assert_eq!(
                w.count_in(now, w.span_s()),
                expected.len() as u64,
                "in-span samples counted exactly once"
            );
            // Distinct values per sample: any drop or double-count
            // changes the returned multiset, not just its cardinality.
            prop_assert_eq!(w.samples_in(now, w.span_s()), expected);
            let stale: u64 = samples
                .iter()
                .filter(|(ts, _)| w.slot_index(*ts) < first_idx)
                .count() as u64;
            prop_assert_eq!(
                stale + w.count_in(now, w.span_s()),
                samples.len() as u64,
                "every recorded sample is either in-span or aged out"
            );
        }
    }
}
