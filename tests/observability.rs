//! The unified tracing layer, end to end: span trees whose aggregates
//! reconcile with the billed totals, deterministic JSONL export, and
//! reuse events that appear exactly when Context reuse is enabled.

use aida::core::Context;
use aida::obs::SpanKind;
use aida::prelude::*;
use aida_synth::legal;

/// The Table 1 query, traced: per-operator dollars and virtual seconds
/// must sum to the query root's totals, and the root must agree with the
/// run's own accounting.
#[test]
fn explain_analyze_totals_reconcile_with_the_run() {
    let workload = legal::generate(1);
    let (run, recorder) = aida::eval::run_pz_compute_traced(&workload, 1);
    let trace = recorder.trace();

    let roots = trace.roots();
    assert_eq!(roots.len(), 1, "one query span: {roots:?}");
    let root = roots[0];
    assert_eq!(trace.spans[root].kind, SpanKind::Query);

    // Root inclusive $ equals the run's cost.
    let root_totals = trace.inclusive(root);
    assert!(
        (root_totals.cost_usd - run.cost).abs() < 1e-9,
        "root ${} vs run ${}",
        root_totals.cost_usd,
        run.cost
    );
    // Root duration equals the run's virtual seconds.
    let root_duration = trace.spans[root].duration_s();
    assert!(
        (root_duration - run.time).abs() < 1e-9,
        "root {root_duration}s vs run {}s",
        run.time
    );

    // Per-operator $ and virtual seconds sum to the query totals: the
    // query span has no own LLM calls here, so its children's inclusive
    // costs and durations partition it.
    let children = trace.children(root);
    assert!(!children.is_empty());
    let child_cost: f64 = children.iter().map(|&c| trace.inclusive(c).cost_usd).sum();
    assert!(
        (child_cost - root_totals.cost_usd).abs() < 1e-9,
        "children ${child_cost} vs root ${}",
        root_totals.cost_usd
    );
    let child_time: f64 = children.iter().map(|&c| trace.spans[c].duration_s()).sum();
    assert!(
        (child_time - root_duration).abs() < 1e-6,
        "children {child_time}s vs root {root_duration}s"
    );

    // The tree reaches the physical layer and the report renders it.
    assert!(trace.spans.iter().any(|s| s.kind == SpanKind::PhysicalOp));
    assert!(trace.spans.iter().any(|s| s.kind == SpanKind::AgentStep));
    let report = trace.explain_analyze();
    assert!(report.starts_with("EXPLAIN ANALYZE\n"));
    assert!(report.contains("query"));
    assert!(report.contains("physical_op"));
    assert!(report.contains("llm.calls"));
}

/// Two runs of the Table 1 query at the same seed export byte-identical
/// JSONL traces (the recorder only ever sees the virtual clock).
#[test]
fn traces_are_deterministic_across_runs() {
    let workload = legal::generate(1);
    let (run_a, rec_a) = aida::eval::run_pz_compute_traced(&workload, 1);
    let (run_b, rec_b) = aida::eval::run_pz_compute_traced(&workload, 1);
    assert_eq!(run_a.answer, run_b.answer);
    let jsonl_a = rec_a.trace().to_jsonl();
    let jsonl_b = rec_b.trace().to_jsonl();
    assert!(!jsonl_a.is_empty());
    assert_eq!(jsonl_a, jsonl_b, "same seed must export identical traces");
}

/// Tracing must not perturb the simulation: a traced run and an untraced
/// run at the same seed produce the same answer, cost, and time.
#[test]
fn tracing_never_changes_the_run() {
    let workload = legal::generate(2);
    let untraced = aida::eval::run_pz_compute(&workload, 2);
    let (traced, _) = aida::eval::run_pz_compute_traced(&workload, 2);
    assert_eq!(untraced.answer, traced.answer);
    assert_eq!(untraced.cost, traced.cost);
    assert_eq!(untraced.time, traced.time);
}

fn legal_ctx(rt: &Runtime, seed: u64) -> Context {
    let workload = legal::generate(seed);
    workload.install_oracle(&rt.env().llm);
    Context::builder("legal", workload.lake.clone())
        .description(workload.description.clone())
        .with_vector_index()
        .build(rt)
}

/// With Context reuse on, the second query's trace carries a reuse hit
/// (and the first a miss); with reuse off, no reuse events exist at all.
#[test]
fn reuse_events_follow_the_reuse_switch() {
    let rt = Runtime::builder()
        .seed(3)
        .tracing(true)
        .context_reuse(true)
        .build();
    let ctx = legal_ctx(&rt, 3);
    let _ = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2001")
        .run();
    let _ = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2024")
        .run();
    let jsonl = rt.recorder().trace().to_jsonl();
    assert!(
        jsonl.contains("\"event\":\"reuse_miss\""),
        "first lookup misses"
    );
    assert!(
        jsonl.contains("\"event\":\"reuse_hit\""),
        "second lookup hits"
    );
    let (hits, misses) = rt.reuse_stats();
    assert!(hits >= 1, "hits {hits}");
    assert!(misses >= 1, "misses {misses}");

    let rt = Runtime::builder()
        .seed(3)
        .tracing(true)
        .context_reuse(false)
        .build();
    let ctx = legal_ctx(&rt, 3);
    let _ = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2001")
        .run();
    let _ = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2024")
        .run();
    let jsonl = rt.recorder().trace().to_jsonl();
    assert!(
        !jsonl.contains("reuse_hit"),
        "no reuse events when disabled"
    );
    assert!(!jsonl.contains("reuse_miss"));
    assert_eq!(rt.reuse_stats(), (0, 0));
}

/// SQL over materialized findings shows up as `sql` spans and events.
#[test]
fn sql_statements_are_traced() {
    let rt = Runtime::builder().seed(4).tracing(true).build();
    let ctx = legal_ctx(&rt, 4);
    let _ = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2001")
        .run();
    let tables = rt.table_names();
    assert!(!tables.is_empty());
    let out = rt
        .sql(&format!("SELECT COUNT(*) AS n FROM {}", tables[0]))
        .unwrap();
    assert_eq!(out.len(), 1);
    let trace = rt.recorder().trace();
    assert!(trace.spans.iter().any(|s| s.kind == SpanKind::Sql));
    assert_eq!(trace.counters.get("sql.statements"), Some(&1));
    assert!(trace.to_jsonl().contains("\"event\":\"sql\""));
}

/// A disabled recorder records nothing and exports an empty trace.
#[test]
fn disabled_recorder_is_inert() {
    let rt = Runtime::builder().seed(5).build();
    assert!(!rt.recorder().is_enabled());
    let ctx = legal_ctx(&rt, 5);
    let _ = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2001")
        .run();
    let trace = rt.recorder().trace();
    assert!(trace.spans.is_empty());
    assert!(trace.counters.is_empty());
}
