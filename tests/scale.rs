//! Scale smoke test: the full pipeline on a 432-file lake with an IVF
//! index — proving the larger-lake path (approximate vector search,
//! optimizer over a big scan) works end to end.

use aida::core::Context;
use aida::prelude::*;
use aida::synth::legal;

#[test]
fn compute_on_a_432_file_lake_with_ivf_index() {
    let rt = Runtime::builder().seed(81).build();
    let workload = legal::generate_scaled(81, 200);
    assert_eq!(workload.lake.len(), 432);
    workload.install_oracle(&rt.env().llm);
    let ctx = Context::builder("legal-xl", workload.lake.clone())
        .description(workload.description.clone())
        .with_ivf_index(16, 4)
        .build(&rt);

    // The IVF index returns topically-relevant candidates among 432. (The
    // needle CSV embeds as mostly numbers, so prose report pages can
    // legitimately outrank it — exhaustive recall is the semantic
    // filter's job, not the index's.)
    let hits = ctx.vector_search(&rt, "national identity theft reports by year", 8);
    assert_eq!(hits.len(), 8);
    assert!(
        hits.iter()
            .filter(|h| h.contains("annual_report")
                || h.contains("identity_theft")
                || *h == legal::NATIONAL_FILE)
            .count()
            >= 6,
        "most IVF hits should be theft-related: {hits:?}"
    );

    let outcome = rt
        .query(&ctx)
        .search("look for national identity theft statistics")
        .compute("compute the number of identity theft reports in 2024")
        .run();
    let answer = outcome.answer.expect("compute answers at scale");
    assert_eq!(answer.as_int().unwrap(), legal::THEFTS_LAST);
    // Search narrowed the compute's input well below the full lake.
    assert!(
        outcome.context.len() < 100,
        "narrowed to {}",
        outcome.context.len()
    );
}
