//! Replay guarantees: identical seeds reproduce identical executions —
//! answers, dollars, virtual seconds — across the whole stack. This is the
//! property every experiment in EXPERIMENTS.md rests on.

use aida::core::Context;
use aida::prelude::*;
use aida::synth::{enron, legal};

fn run_compute(seed: u64) -> (Option<String>, f64, f64) {
    let rt = Runtime::builder().seed(seed).build();
    let workload = legal::generate(seed);
    workload.install_oracle(&rt.env().llm);
    let ctx = Context::builder("legal", workload.lake.clone())
        .description(workload.description.clone())
        .with_vector_index()
        .build(&rt);
    let outcome = rt.query(&ctx).compute(&workload.query).run();
    (
        outcome.answer.map(|v| v.to_string()),
        outcome.cost,
        outcome.time,
    )
}

#[test]
fn compute_replays_bit_for_bit() {
    let a = run_compute(9);
    let b = run_compute(9);
    assert_eq!(a.0, b.0, "answers must replay");
    assert_eq!(a.1, b.1, "costs must replay");
    assert_eq!(a.2, b.2, "times must replay");
}

#[test]
fn different_seeds_differ_somewhere() {
    let a = run_compute(9);
    let b = run_compute(10);
    // Different lakes/noise: at least the spend differs.
    assert!(a.1 != b.1 || a.2 != b.2 || a.0 != b.0);
}

#[test]
fn workload_generation_replays() {
    let a = enron::generate(4);
    let b = enron::generate(4);
    assert_eq!(a.truth, b.truth);
    for (da, db) in a.lake.docs().iter().zip(b.lake.docs()) {
        assert_eq!(da.content, db.content);
        assert_eq!(da.labels, db.labels);
    }
}

#[test]
fn table_experiments_replay() {
    let a = aida::eval::table1(&[7]);
    let b = aida::eval::table1(&[7]);
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.system, rb.system);
        for ((na, va), (nb, vb)) in ra.values.iter().zip(&rb.values) {
            assert_eq!(na, nb);
            assert_eq!(va, vb, "{}.{} must replay", ra.system, na);
        }
    }
}

#[test]
fn semops_parallelism_does_not_change_results() {
    use aida::llm::{ModelId, SimLlm};
    use aida::semops::{ExecEnv, Executor, PhysicalPlan};
    let workload = legal::generate(3);
    let run = |parallelism: usize| {
        let env = ExecEnv::new(SimLlm::new(3));
        workload.install_oracle(&env.llm);
        let ds =
            Dataset::scan(&workload.lake, "legal").sem_filter("mentions identity theft statistics");
        let plan = PhysicalPlan::uniform(ds.plan(), ModelId::Mini, parallelism);
        Executor::new(&env)
            .execute(&plan)
            .records
            .iter()
            .map(|r| r.source.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(16));
}
