//! End-to-end integration tests spanning every crate: lake → Context →
//! agentic operators → optimized programs → materialized SQL.

use aida::core::Context;
use aida::prelude::*;
use aida::synth::{enron, legal};

#[test]
fn legal_ratio_pipeline_end_to_end() {
    let rt = Runtime::builder().seed(31).build();
    let workload = legal::generate(31);
    workload.install_oracle(&rt.env().llm);
    let ctx = Context::builder("legal", workload.lake.clone())
        .description(workload.description.clone())
        .with_vector_index()
        .build(&rt);

    let outcome = rt.query(&ctx).compute(&workload.query).run();
    let ratio = outcome
        .answer
        .expect("compute answers the ratio query")
        .as_float()
        .expect("the answer is numeric");
    let truth = legal::true_ratio();
    assert!(
        ((ratio - truth) / truth).abs() < 0.05,
        "ratio {ratio} vs truth {truth}"
    );

    // The run spent simulated money and time.
    assert!(outcome.cost > 0.0 && outcome.cost < 5.0);
    assert!(outcome.time > 0.0);
    // Programs were synthesized and executed.
    let total_programs: usize = outcome.trace.iter().map(|t| t.programs.len()).sum();
    assert!(
        total_programs >= 2,
        "ratio compute runs one program per year"
    );
    // Findings were registered as SQL tables.
    assert!(!rt.table_names().is_empty());
}

#[test]
fn enron_filter_pipeline_end_to_end() {
    let rt = Runtime::builder().seed(2).build();
    let workload = enron::generate(2);
    workload.install_oracle(&rt.env().llm);
    let ctx = Context::builder("enron", workload.lake.clone())
        .description(workload.description.clone())
        .build(&rt);

    let outcome = rt.query(&ctx).compute(&workload.query).run();
    let names: Vec<String> = outcome
        .answer
        .expect("filter compute answers")
        .as_list()
        .expect("answer is a list")
        .iter()
        .map(|v| v.as_str().unwrap().to_string())
        .collect();
    let truth = workload.truth.as_doc_set().unwrap();
    let prf = aida::eval::f1_score(&names, truth);
    assert!(prf.f1 > 0.85, "F1 {:.3}", prf.f1);

    // The materialized context is the matching subset.
    assert!(outcome.context.len() <= names.len() + 5);
    assert!(outcome.context.description.contains("FINDINGS"));
}

#[test]
fn search_enriches_and_narrows_before_compute() {
    let rt = Runtime::builder().seed(41).build();
    let workload = legal::generate(41);
    workload.install_oracle(&rt.env().llm);
    let ctx = Context::builder("legal", workload.lake.clone())
        .description(workload.description.clone())
        .with_vector_index()
        .build(&rt);

    let outcome = rt
        .query(&ctx)
        .search("look for files with identity theft statistics")
        .compute("compute the number of identity theft reports in 2024")
        .run();
    assert_eq!(outcome.trace[0].op, "search");
    assert_eq!(outcome.trace[1].op, "compute");
    // The search narrowed the lake the compute ran over.
    assert!(outcome.context.len() < workload.lake.len());
    let answer = outcome.answer.expect("compute after search answers");
    assert_eq!(answer.as_int().unwrap(), legal::THEFTS_LAST);
}

#[test]
fn materialized_tables_are_sql_queryable() {
    let rt = Runtime::builder().seed(51).build();
    let workload = legal::generate(51);
    workload.install_oracle(&rt.env().llm);
    let ctx = Context::builder("legal", workload.lake.clone())
        .description(workload.description.clone())
        .with_vector_index()
        .build(&rt);
    let _ = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2024")
        .run();
    let tables = rt.table_names();
    assert!(!tables.is_empty());
    let out = rt
        .sql(&format!(
            "SELECT source, value FROM {} WHERE value IS NOT NULL",
            tables[0]
        ))
        .expect("materialized table is queryable");
    assert!(!out.is_empty());
    // The national file's value is in there.
    assert!(out
        .column("value")
        .unwrap()
        .iter()
        .any(|v| v.as_int().ok() == Some(legal::THEFTS_LAST)));
}

#[test]
fn materialized_tables_join_across_queries() {
    // Two computes materialize two tables; SQL joins them on provenance —
    // the paper's "future queries can reuse structured tables" goal.
    let rt = Runtime::builder().seed(71).context_reuse(false).build();
    let workload = legal::generate(71);
    workload.install_oracle(&rt.env().llm);
    let ctx = Context::builder("legal", workload.lake.clone())
        .description(workload.description.clone())
        .with_vector_index()
        .build(&rt);
    let first = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2001")
        .run();
    let second = rt
        .query(&ctx)
        .compute("find the number of identity theft reports in 2024")
        .run();
    assert!(first.answer.is_some() && second.answer.is_some());
    let tables = rt.table_names();
    assert!(
        tables.len() >= 2,
        "two computes materialize two tables: {tables:?}"
    );
    // Join the two materializations on source and compute the ratio in SQL.
    let out = rt
        .sql(&format!(
            "SELECT a.source, ROUND(b.value / a.value, 2) AS ratio \
             FROM {} a JOIN {} b ON a.source = b.source \
             WHERE a.value IS NOT NULL AND b.value IS NOT NULL",
            tables[0], tables[1]
        ))
        .expect("join over materialized tables");
    let truth = legal::true_ratio();
    let hit = out.rows().iter().any(|row| {
        row[1]
            .as_float()
            .map(|r| ((r - truth) / truth).abs() < 0.05)
            .unwrap_or(false)
    });
    assert!(
        hit,
        "joined ratio should match ground truth: {}",
        out.render()
    );
}

#[test]
fn usage_meter_reconciles_with_outcome_costs() {
    let rt = Runtime::builder().seed(61).build();
    let workload = legal::generate(61);
    workload.install_oracle(&rt.env().llm);
    let ctx = Context::builder("legal", workload.lake.clone())
        .description(workload.description.clone())
        .build(&rt);
    assert_eq!(rt.cost(), 0.0);
    let outcome = rt.query(&ctx).compute(&workload.query).run();
    // Everything the pipeline spent is on the runtime's meter.
    assert!((rt.cost() - outcome.cost).abs() < 1e-9);
    assert!((rt.elapsed() - outcome.time).abs() < 1e-9);
}
