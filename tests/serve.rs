//! Integration tests for the serving layer: concurrent hammering of the
//! shared runtime, deterministic replay through the full service, and
//! quota isolation between tenants.

use aida::prelude::*;

fn lake() -> DataLake {
    DataLake::from_docs([
        Document::new("report_2001.txt", "identity theft reports in 2001: 86250"),
        Document::new("report_2002.txt", "identity theft reports in 2002: 161977"),
        Document::new("report_2024.txt", "identity theft reports in 2024: 1135291"),
    ])
}

/// Eight real threads hammer the shared ContextManager (register +
/// reuse) and the SQL catalog at once. Counters must not lose updates:
/// every reuse() call lands as exactly one hit or one miss, every
/// register() either stays in the store or shows up as an eviction, and
/// the capacity bound holds throughout.
#[test]
fn concurrent_hammering_loses_no_updates() {
    const THREADS: u64 = 8;
    const ROUNDS: u64 = 50;
    const CAPACITY: usize = 16;

    let rt = Runtime::builder().seed(3).build();
    let manager = aida::core::ContextManager::with_capacity(CAPACITY);
    let mut counts = Table::new(Schema::of(["year", "thefts"]));
    counts
        .push_row(vec![Value::Int(2001), Value::Int(86250)])
        .unwrap();
    rt.register_table("counts", counts);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let rt = &rt;
            let manager = &manager;
            scope.spawn(move || {
                for i in 0..ROUNDS {
                    let lake = DataLake::from_docs([Document::new(
                        format!("doc_{t}_{i}.txt"),
                        format!("content {t} {i}"),
                    )]);
                    let ctx = Context::builder(format!("ctx_{t}_{i}"), lake)
                        .description(format!("stress context {t} {i}"))
                        .build(rt);
                    manager.register(&format!("instruction {t} {i}"), ctx, i as f64);
                    let _ = manager.reuse(&format!("instruction {t} {i}"), 0.5);
                    let table = rt
                        .sql("SELECT thefts FROM counts WHERE year = 2001")
                        .unwrap();
                    assert_eq!(table.len(), 1);
                }
            });
        }
    });

    let (hits, misses) = manager.reuse_stats();
    assert_eq!(
        hits + misses,
        THREADS * ROUNDS,
        "every reuse() call counted exactly once (hits={hits}, misses={misses})"
    );
    assert!(manager.len() <= CAPACITY, "capacity bound held");
    assert_eq!(
        manager.evictions(),
        THREADS * ROUNDS - manager.len() as u64,
        "every register retained or evicted, none lost"
    );
}

fn build_service(seed: u64) -> QueryService {
    let rt = Runtime::builder().seed(seed).build();
    let ctx = Context::builder("lake", lake())
        .description("FTC identity theft reports by year")
        .build(&rt);
    let mut svc = QueryService::new(
        rt,
        ServeConfig {
            workers: 3,
            queue_capacity: 16,
            ..ServeConfig::default()
        },
    );
    svc.register_context("reports", ctx);
    svc
}

/// The full service — driver, admission, WRR dispatch, real worker
/// threads — replays byte-identically at the same seed, including the
/// per-tenant dollar attribution.
#[test]
fn service_replay_is_byte_identical() {
    let run = || {
        let mut svc = build_service(11);
        svc.register_tenant("acme", TenantConfig::weighted(2));
        svc.register_tenant("bolt", TenantConfig::default());
        let loads = [
            TenantLoad::new("acme", "reports")
                .instructions([
                    "count identity theft reports in 2001",
                    "count identity theft reports in 2024",
                ])
                .queries(4)
                .mean_interarrival(25.0),
            TenantLoad::new("bolt", "reports")
                .instructions(["count identity theft reports in 2002"])
                .queries(3)
                .mean_interarrival(40.0)
                .offset(10.0),
        ];
        let report = svc.run(open_loop(11, &loads));
        let acme = svc.tenants().spend(&TenantId::new("acme"));
        let bolt = svc.tenants().spend(&TenantId::new("bolt"));
        (report.to_jsonl(), report.render(), acme.usd, bolt.usd)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "JSONL export is byte-identical");
    assert_eq!(a.1, b.1, "dashboard render is byte-identical");
    assert_eq!(a.2, b.2, "per-tenant dollars identical (acme)");
    assert_eq!(a.3, b.3, "per-tenant dollars identical (bolt)");
    assert!(a.2 > 0.0 && a.3 > 0.0);
}

/// An over-quota tenant is shed with a typed rejection while the other
/// tenant's latency percentiles stay within 2x its solo (alone on the
/// service) values.
#[test]
fn quota_shedding_isolates_the_other_tenant() {
    let calm_load = || {
        TenantLoad::new("calm", "reports")
            .instructions([
                "count identity theft reports in 2001",
                "count identity theft reports in 2024",
            ])
            .queries(5)
            .mean_interarrival(60.0)
    };

    // Solo: calm is the only tenant.
    let mut solo_svc = build_service(21);
    solo_svc.register_tenant("calm", TenantConfig::default());
    let solo = solo_svc.run(open_loop(21, &[calm_load()]));
    let solo_report = &solo.tenants[&TenantId::new("calm")];
    assert_eq!(solo_report.completed, 5);
    let (solo_p50, solo_p95) = (solo_report.latency.p50(), solo_report.latency.p95());

    // Mixed: a noisy neighbor floods the service under a micro-budget,
    // so it is shed after its first completed query.
    let mut mixed_svc = build_service(21);
    mixed_svc.register_tenant("calm", TenantConfig::default());
    mixed_svc.register_tenant("noisy", TenantConfig::default().dollars(1e-6));
    let noisy_load = TenantLoad::new("noisy", "reports")
        .instructions(["count identity theft reports in 2002"])
        .queries(20)
        .mean_interarrival(10.0);
    let mixed = mixed_svc.run(open_loop(21, &[calm_load(), noisy_load]));

    let noisy_report = &mixed.tenants[&TenantId::new("noisy")];
    assert!(
        *noisy_report.shed.get("budget_exhausted").unwrap_or(&0) >= 15,
        "noisy neighbor shed with a typed rejection: {:?}",
        noisy_report.shed
    );

    let calm_report = &mixed.tenants[&TenantId::new("calm")];
    assert_eq!(calm_report.completed, 5, "calm tenant fully served");
    assert!(
        calm_report.latency.p50() <= 2.0 * solo_p50,
        "p50 {} vs solo {}",
        calm_report.latency.p50(),
        solo_p50
    );
    assert!(
        calm_report.latency.p95() <= 2.0 * solo_p95,
        "p95 {} vs solo {}",
        calm_report.latency.p95(),
        solo_p95
    );
}

/// Requests from tenants the service doesn't know are refused with the
/// typed `unknown_tenant` rejection — quota enforcement cannot be
/// bypassed by inventing a fresh tenant id.
#[test]
fn unknown_tenants_cannot_slip_past_admission() {
    let mut svc = build_service(5);
    svc.register_tenant("acme", TenantConfig::default());
    let loads = [TenantLoad::new("ghost", "reports")
        .instructions(["count identity theft reports in 2001"])
        .queries(2)
        .mean_interarrival(5.0)];
    let report = svc.run(open_loop(5, &loads));
    assert!(report.completions.is_empty());
    assert_eq!(report.sheds.len(), 2);
    assert!(report
        .sheds
        .iter()
        .all(|s| s.reason.kind() == "unknown_tenant"));
}
