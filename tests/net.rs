//! Integration tests for the live front door: the wire codec under
//! adversarial bytes, byte-identical replay of a full listener soak,
//! latency-targeted autoscaling convergence, and closed-loop clients
//! whose retries never double-bill a tenant.

use aida::core::{Context, Runtime};
use aida::data::{DataLake, Document};
use aida::serve::{
    encode_frame, plan_hash, AutoscaleConfig, ClientConfig, ClientOutcome, Frame, FrameReader,
    Listener, LiveSource, Priority, QueryService, ServeConfig, TenantConfig, TenantId, WireBody,
    WireRequest,
};
use aida_testkit::{NetSim, NetSimConfig};

fn lake() -> DataLake {
    DataLake::from_docs([
        Document::new("report_2001.txt", "identity theft reports in 2001: 86250"),
        Document::new("report_2002.txt", "identity theft reports in 2002: 161977"),
        Document::new("report_2024.txt", "identity theft reports in 2024: 1135291"),
    ])
}

/// A small live service: shared semantic cache, one registered context,
/// a default tenant plus a micro-budget tenant for terminal rejections.
fn live_service(seed: u64, config: ServeConfig) -> QueryService {
    let rt = Runtime::builder().seed(seed).semantic_cache(1024).build();
    let ctx = Context::builder("lake", lake())
        .description("FTC identity theft reports by year")
        .build(&rt);
    let mut svc = QueryService::new(rt, config);
    svc.register_context("reports", ctx);
    svc.register_tenant("acme", TenantConfig::weighted(2));
    svc.register_tenant("bolt", TenantConfig::default());
    svc.register_tenant("dime", TenantConfig::default().dollars(1e-6));
    svc
}

const MIX: [&str; 3] = [
    "count identity theft reports in 2001",
    "count identity theft reports in 2002",
    "count identity theft reports in 2024",
];

// ----- codec ----------------------------------------------------------

/// Every frame kind round-trips through the public encode/decode path.
#[test]
fn wire_frames_round_trip() {
    let frames = [
        Frame::Request(WireRequest {
            client_seq: 42,
            sent_s: 7.5,
            tenant: "acme".into(),
            context: "reports".into(),
            priority: Priority::High,
            deadline_s: Some(120.0),
            body: WireBody::Source(MIX[0].into()),
        }),
        Frame::Request(WireRequest {
            client_seq: 43,
            sent_s: 8.0,
            tenant: "acme".into(),
            context: "reports".into(),
            priority: Priority::Low,
            deadline_s: None,
            body: WireBody::PlanHash(plan_hash(MIX[0])),
        }),
        Frame::Accepted {
            client_seq: 42,
            seq: 7,
        },
        Frame::Rejected {
            client_seq: 42,
            retryable: true,
            reason: "queue_full".into(),
            detail: "queue full (64/64)".into(),
        },
        Frame::Completed {
            client_seq: 42,
            seq: 7,
            latency_s: 61.25,
            cost_usd: 0.0125,
            answered: true,
        },
        Frame::Error {
            code: "torn_frame".into(),
            detail: "connection ended mid-frame (3 of 30 bytes)".into(),
        },
    ];
    for frame in &frames {
        let mut reader = FrameReader::new();
        reader.push(&encode_frame(frame));
        assert_eq!(reader.next_frame().unwrap().as_ref(), Some(frame));
        assert!(reader.next_frame().unwrap().is_none());
        assert!(reader.torn().is_none());
    }
}

mod codec_props {
    use super::*;
    use proptest::prelude::*;

    /// Drains a reader to its terminal state: decoded frame count, plus
    /// the typed error that ended the stream (if any). Panics are the
    /// one outcome the protocol forbids.
    fn drain(reader: &mut FrameReader) -> (usize, Option<String>) {
        let mut decoded = 0;
        loop {
            match reader.next_frame() {
                Ok(Some(_)) => decoded += 1,
                Ok(None) => return (decoded, None),
                Err(err) => return (decoded, Some(err.kind().to_string())),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Arbitrary byte soup never panics the decoder: every stream
        /// ends in "need more bytes" (leftovers typed as torn_frame) or
        /// a typed wire error.
        #[test]
        fn byte_soup_never_panics(
            bytes in prop::collection::vec(any::<u8>(), 0..192),
            split in 0usize..192,
        ) {
            let mut reader = FrameReader::new();
            // Deliver in two pushes so mid-stream boundaries vary too.
            let at = split.min(bytes.len());
            reader.push(&bytes[..at]);
            let _ = drain(&mut reader);
            reader.push(&bytes[at..]);
            let (_, err) = drain(&mut reader);
            if let Some(kind) = &err {
                prop_assert!(!kind.is_empty(), "errors carry a stable kind");
            }
            if err.is_none() {
                if let Some(torn) = reader.torn() {
                    prop_assert_eq!(torn.kind(), "torn_frame");
                }
            }
        }

        /// One flipped byte in a valid frame either still decodes, waits
        /// for more bytes, or fails with a typed error — never a panic,
        /// whatever field the corruption lands in.
        #[test]
        fn corrupted_frames_fail_typed(
            seq in any::<u64>(),
            tenant in "[a-z]{0,6}",
            source in "[a-z0-9 ]{0,24}",
            at in 0usize..64,
            flip in 1u8..255,
        ) {
            let mut bytes = encode_frame(&Frame::Request(WireRequest {
                client_seq: seq,
                sent_s: 3.25,
                tenant,
                context: "reports".into(),
                priority: Priority::Normal,
                deadline_s: None,
                body: WireBody::Source(source),
            }));
            let at = at % bytes.len();
            bytes[at] ^= flip;
            let mut reader = FrameReader::new();
            reader.push(&bytes);
            let (_, err) = drain(&mut reader);
            if let Some(kind) = err {
                prop_assert!(!kind.is_empty());
            }
        }

        /// Requests with arbitrary field values survive the wire intact
        /// (encode → decode is the identity).
        #[test]
        fn requests_round_trip(
            seq in any::<u64>(),
            sent_s in 0.0f64..1e9,
            tenant in "[a-z0-9_]{0,12}",
            context in "[a-z0-9_]{0,12}",
            source in ".{0,64}",
            prio in 0u8..3,
            deadline in 0.0f64..1e6,
            with_deadline in any::<bool>(),
            hashed in any::<bool>(),
        ) {
            let request = WireRequest {
                client_seq: seq,
                sent_s,
                tenant,
                context,
                priority: Priority::from_code(prio).unwrap(),
                deadline_s: with_deadline.then_some(deadline),
                body: if hashed {
                    WireBody::PlanHash(plan_hash(&source))
                } else {
                    WireBody::Source(source)
                },
            };
            let mut reader = FrameReader::new();
            reader.push(&encode_frame(&Frame::Request(request.clone())));
            let back = reader.next_frame().unwrap().unwrap();
            prop_assert_eq!(back, Frame::Request(request));
        }
    }
}

// ----- listener over the simulated fabric ------------------------------

/// Torn frames and plan hashes through the public listener API: a client
/// that aborts mid-frame is counted with the typed `torn_frame` error
/// and admits nothing; a returning client's plan hash resolves to the
/// source a different connection interned earlier.
#[test]
fn listener_types_torn_frames_and_resolves_plan_hashes() {
    // Tiny segments so one frame spans several delivery events.
    let mut listener = Listener::new(NetSim::new(NetSimConfig {
        seed: 11,
        max_chunk: 8,
        ..NetSimConfig::default()
    }));
    let request = |seq: u64, body: WireBody| {
        encode_frame(&Frame::Request(WireRequest {
            client_seq: seq,
            sent_s: 0.5,
            tenant: "acme".into(),
            context: "reports".into(),
            priority: Priority::Normal,
            deadline_s: None,
            body,
        }))
    };
    let pump = |listener: &mut Listener<NetSim>| {
        let mut got = Vec::new();
        while let Some(t) = listener.fabric_mut().next_event_s() {
            listener.fabric_mut().advance(t);
            got.extend(listener.turn());
        }
        got
    };

    // Connection 1 interns the source.
    let full = listener.fabric_mut().connect(0.0);
    listener.fabric_mut().advance(0.0);
    listener
        .fabric_mut()
        .client_send(full, &request(1, WireBody::Source(MIX[0].into())));
    assert_eq!(pump(&mut listener).len(), 1);

    // Connection 2 quits three bytes short of a complete frame.
    let now = listener.fabric_mut().now();
    let torn = listener.fabric_mut().connect(now);
    let frame = request(2, WireBody::Source(MIX[1].into()));
    listener
        .fabric_mut()
        .client_send(torn, &frame[..frame.len() - 3]);
    listener.fabric_mut().client_close(torn);
    assert!(pump(&mut listener).is_empty(), "torn frame admits nothing");
    assert_eq!(listener.stats().wire_errors.get("torn_frame"), Some(&1));

    // Connection 3 sends only the hash of connection 1's source.
    let now = listener.fabric_mut().now();
    let hashed = listener.fabric_mut().connect(now);
    listener
        .fabric_mut()
        .client_send(hashed, &request(3, WireBody::PlanHash(plan_hash(MIX[0]))));
    let got = pump(&mut listener);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].instruction, MIX[0]);
    assert_eq!(listener.stats().plan_hash_hits, 1);
    assert_eq!(listener.stats().conns_opened, 3);
    assert_eq!(listener.stats().wire_error_total(), 1);
}

// ----- live soak determinism -------------------------------------------

fn soak_fleet(clients: usize) -> Vec<ClientConfig> {
    (0..clients)
        .map(|i| {
            let tenant = if i % 2 == 0 { "acme" } else { "bolt" };
            ClientConfig::new(tenant, "reports")
                .instructions([MIX[i % 3]])
                .queries(if i % 5 == 4 { 2 } else { 1 })
                .think(20.0)
                .retries(3)
                .backoff(10.0)
                .start(i as f64 * 2.0)
        })
        .collect()
}

/// The full live path — simulated fabric, listener, closed-loop fleet,
/// admission, dispatch, settlement — replays byte-identically at the
/// same seed across every report surface.
#[test]
fn live_soak_replays_byte_identically() {
    let run = || {
        let mut svc = live_service(
            17,
            ServeConfig {
                workers: 2,
                queue_capacity: 8,
                ..ServeConfig::default()
            },
        );
        let mut source = LiveSource::new(17, soak_fleet(24));
        let report = svc.serve(&mut source);
        (
            report.to_jsonl(),
            report.render(),
            report.health_jsonl(),
            source.outcomes().len(),
        )
    };
    let (jsonl_a, render_a, health_a, outcomes_a) = run();
    let (jsonl_b, render_b, health_b, outcomes_b) = run();
    assert_eq!(jsonl_a, jsonl_b, "trace export is byte-identical");
    assert_eq!(render_a, render_b, "dashboard render is byte-identical");
    assert_eq!(health_a, health_b, "health export is byte-identical");
    assert_eq!(outcomes_a, outcomes_b);
    assert_eq!(outcomes_a, 24, "every client resolved");
    assert!(render_a.contains("front door:"), "net section rendered");
}

// ----- autoscaling convergence ------------------------------------------

/// Under a dense cold burst the controller scales up past the breach,
/// then releases workers as the warm sparse tail clears the target:
/// ups, then downs, no oscillation, and strictly fewer worker-seconds
/// than the max-size pool it was allowed to hold.
#[test]
fn autoscaler_converges_up_then_down() {
    // The test lake's cold queries run ~8-25s virtual and warm repeats
    // ~0.3s, so a 5s target is breached by the dense head and cleared
    // with room by the warm tail.
    let target_p99_s = 5.0;
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 16,
        ..ServeConfig::default()
    }
    .autoscale(
        AutoscaleConfig::new(1, 4, target_p99_s)
            .evaluate_every(15.0)
            .window(120.0)
            .cooldown(45.0),
    );
    let mut svc = live_service(23, config);
    // Dense head (cold queries queue behind each other), sparse tail
    // (warm repeats that leave the pool idle).
    let fleet: Vec<ClientConfig> = (0..36)
        .map(|i| {
            let tenant = if i % 2 == 0 { "acme" } else { "bolt" };
            let start_s = if i < 28 {
                i as f64 * 1.0
            } else {
                28.0 + (i - 28) as f64 * 90.0
            };
            ClientConfig::new(tenant, "reports")
                .instructions([MIX[i % 3]])
                .think(15.0)
                .retries(4)
                .backoff(20.0)
                .start(start_s)
        })
        .collect();
    let mut source = LiveSource::new(23, fleet);
    let report = svc.serve(&mut source);

    assert!(report.scale_ups() >= 1, "cold burst must trigger scale-ups");
    assert!(report.scale_downs() >= 1, "warm tail must release workers");
    let events = &report.scale_events;
    assert_eq!(events[0].direction(), "up", "first move grows the pool");
    assert_eq!(
        events.last().unwrap().direction(),
        "down",
        "last move shrinks the pool"
    );
    let direction_changes = events
        .windows(2)
        .filter(|pair| pair[0].direction() != pair[1].direction())
        .count();
    assert!(
        direction_changes <= 2,
        "hysteresis prevents oscillation: {direction_changes} direction changes in {events:?}"
    );
    for pair in events.windows(2) {
        assert!(pair[1].at_s > pair[0].at_s, "scale events are ordered");
    }
    assert_eq!(events.last().unwrap().to, 1, "pool converges back to min");

    // Steady state (second half of the run) holds the target.
    let mut steady: Vec<f64> = report
        .completions
        .iter()
        .filter(|c| c.end_s * 2.0 >= report.makespan_s)
        .map(|c| c.latency_s())
        .collect();
    steady.sort_by(f64::total_cmp);
    assert!(!steady.is_empty(), "tail traffic reaches the second half");
    let p99 = steady[((steady.len() - 1) as f64 * 0.99) as usize];
    assert!(
        p99 <= target_p99_s,
        "converged p99 {p99:.1}s within {target_p99_s}s target"
    );

    // The whole point: elasticity costs less than holding max capacity.
    assert!(
        report.worker_seconds < 4.0 * report.makespan_s,
        "autoscaled pool ({:.0} worker-seconds) beat the fixed max ({:.0})",
        report.worker_seconds,
        4.0 * report.makespan_s
    );
}

// ----- closed-loop retries and billing ----------------------------------

/// Overload and quota rejections cost the client retries, never money:
/// each tenant's ledger spend equals the sum of its completed queries'
/// costs exactly, every client resolves to a typed outcome, and no
/// completed query is lost or double-counted on the way to the report.
#[test]
fn rejected_clients_never_double_bill() {
    let mut svc = live_service(
        31,
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServeConfig::default()
        },
    );
    // Everyone piles on at once: a 2-deep queue over 1 worker guarantees
    // retryable queue_full sheds; the micro-budget tenant draws terminal
    // budget_exhausted sheds once its first query settles.
    let mut fleet: Vec<ClientConfig> = (0..10)
        .map(|i| {
            let tenant = if i % 2 == 0 { "acme" } else { "bolt" };
            ClientConfig::new(tenant, "reports")
                .instructions([MIX[i % 3]])
                .think(5.0)
                .retries(2)
                .backoff(5.0)
                .start(i as f64 * 0.25)
        })
        .collect();
    // Dime joins after the storm drains so its first query settles (and
    // trips the quota) instead of dying in the queue_full crowd. Its
    // questions are unique — a shared-cache hit costs $0 and would never
    // exhaust the budget.
    fleet.extend((0..3).map(|i| {
        ClientConfig::new("dime", "reports")
            .instructions([format!("count identity theft reports in 2002 audit {i}")])
            .queries(2)
            .retries(2)
            .backoff(5.0)
            .start(400.0 + i as f64 * 10.0)
    }));
    let clients = fleet.len();
    let mut source = LiveSource::new(31, fleet);
    let report = svc.serve(&mut source);
    let outcomes = source.outcomes();

    // Billing: the ledger charged exactly the completed work, per tenant.
    for tenant in ["acme", "bolt", "dime"] {
        let id = TenantId::new(tenant);
        let billed: f64 = report
            .completions
            .iter()
            .filter(|c| c.tenant == id)
            .map(|c| c.cost_usd)
            .sum();
        let ledger = svc.tenants().spend(&id).usd;
        assert!(
            (ledger - billed).abs() <= 1e-12 * billed.max(1.0),
            "{tenant}: ledger ${ledger} != completed work ${billed}"
        );
    }

    // Every client resolves to exactly one typed outcome, and the
    // client-side query count matches the server's completion count.
    assert_eq!(outcomes.len(), clients);
    let client_queries: usize = outcomes.iter().map(|o| o.queries_completed()).sum();
    assert_eq!(client_queries, report.completions.len());

    // The shed storm was real and the outcomes are typed.
    let net = report.net.as_ref().expect("live run carries a net report");
    assert!(net.client_retries > 0, "queue pressure forced retries");
    assert!(
        report.sheds.iter().any(|s| s.reason.kind() == "queue_full"),
        "queue_full sheds occurred"
    );
    for outcome in &outcomes {
        match outcome {
            ClientOutcome::Completed { .. } => {}
            ClientOutcome::RetriesExhausted {
                retries, reason, ..
            } => {
                assert_eq!(*retries, 2, "gave up only after the full budget");
                assert_eq!(reason, "queue_full");
            }
            ClientOutcome::Abandoned { reason, .. } => {
                assert_eq!(reason, "budget_exhausted", "terminal sheds are typed");
            }
            ClientOutcome::WireFailed { code, .. } => {
                panic!("no wire failures expected, got {code}");
            }
        }
    }
    // The micro-budget tenant hit its quota: at least one dime client
    // was turned away terminally, none silently vanished.
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o, ClientOutcome::Abandoned { .. })),
        "dime's quota produced a terminal rejection"
    );
}
