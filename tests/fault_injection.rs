//! Failure injection: the pipeline must stay correct when LLM calls
//! transiently fail and retry — only the bill changes.

use aida_llm::SimLlm;
use aida_semops::{Dataset, ExecEnv, Executor, PhysicalPlan};
use aida_synth::legal;

fn run_filter(fault_rate: f64) -> (Vec<String>, f64, f64) {
    let workload = legal::generate(5);
    let env = ExecEnv::new(SimLlm::new(5).with_fault_rate(fault_rate));
    workload.install_oracle(&env.llm);
    let ds = Dataset::scan(&workload.lake, "legal").sem_filter(
        "the file contains national statistics on the number of identity theft reports, \
         covering both the years 2001 and 2024",
    );
    let plan = PhysicalPlan::uniform(ds.plan(), aida_llm::ModelId::Flagship, 8);
    let report = Executor::new(&env).execute(&plan);
    let names = report.records.iter().map(|r| r.source.clone()).collect();
    (names, report.cost(), report.time())
}

#[test]
fn results_are_identical_under_faults_but_cost_rises() {
    let (clean_names, clean_cost, clean_time) = run_filter(0.0);
    let (faulty_names, faulty_cost, faulty_time) = run_filter(0.3);
    // Faults are retried: the answers cannot change.
    assert_eq!(clean_names, faulty_names);
    // But the retries are paid for.
    assert!(
        faulty_cost > clean_cost * 1.15,
        "faulty ${faulty_cost} vs clean ${clean_cost}"
    );
    assert!(faulty_time > clean_time, "{faulty_time} vs {clean_time}");
}

#[test]
fn fault_runs_replay_deterministically() {
    assert_eq!(run_filter(0.3), run_filter(0.3));
}

#[test]
fn recorder_accounts_for_fault_retries() {
    use aida::core::Context;
    use aida::prelude::*;
    let run = |fault_rate: f64| {
        let workload = legal::generate(5);
        let rt = Runtime::builder()
            .seed(5)
            .fault_rate(fault_rate)
            .tracing(true)
            .build();
        workload.install_oracle(&rt.env().llm);
        let ctx = Context::builder("legal", workload.lake.clone())
            .description(workload.description.clone())
            .with_vector_index()
            .build(&rt);
        let outcome = rt.query(&ctx).compute(&workload.query).run();
        (
            outcome.answer.unwrap().as_float().unwrap(),
            outcome.cost,
            rt.recorder().trace(),
        )
    };
    let (clean_answer, clean_cost, clean_trace) = run(0.0);
    let (faulty_answer, faulty_cost, faulty_trace) = run(0.3);
    // Same answer at the same seed, but the faulty run billed the retries.
    assert_eq!(clean_answer, faulty_answer);
    assert!(faulty_cost > clean_cost, "${faulty_cost} vs ${clean_cost}");
    // Only the faulty trace carries retry accounting.
    assert_eq!(clean_trace.counters.get("llm.fault_retries"), None);
    let retries = *faulty_trace.counters.get("llm.fault_retries").unwrap();
    assert!(retries > 0, "retries {retries}");
    assert!(!clean_trace.to_jsonl().contains("fault_retry"));
    assert!(faulty_trace
        .to_jsonl()
        .contains("\"event\":\"fault_retry\""));
    // The span tree absorbs the extra attempts: the faulty query root is
    // strictly more expensive, and both roots reconcile with their runs.
    let clean_root = clean_trace.roots()[0];
    let faulty_root = faulty_trace.roots()[0];
    let clean_total = clean_trace.inclusive(clean_root);
    let faulty_total = faulty_trace.inclusive(faulty_root);
    assert!((clean_total.cost_usd - clean_cost).abs() < 1e-9);
    assert!((faulty_total.cost_usd - faulty_cost).abs() < 1e-9);
    assert!(faulty_total.calls > clean_total.calls);
}

#[test]
fn end_to_end_compute_survives_faults() {
    use aida::core::Context;
    use aida::prelude::*;
    let run = |fault_rate: f64| {
        let workload = legal::generate(5);
        let rt = Runtime::builder().seed(5).fault_rate(fault_rate).build();
        workload.install_oracle(&rt.env().llm);
        let ctx = Context::builder("legal", workload.lake.clone())
            .description(workload.description.clone())
            .with_vector_index()
            .build(&rt);
        let outcome = rt.query(&ctx).compute(&workload.query).run();
        (outcome.answer.unwrap().as_float().unwrap(), outcome.cost)
    };
    let (clean_answer, clean_cost) = run(0.0);
    let (faulty_answer, faulty_cost) = run(0.3);
    let truth = legal::true_ratio();
    assert!(((clean_answer - truth) / truth).abs() < 0.05);
    // Same answer under a 30% transient-fault rate, at a higher bill.
    assert_eq!(clean_answer, faulty_answer);
    assert!(faulty_cost > clean_cost, "${faulty_cost} vs ${clean_cost}");
}
