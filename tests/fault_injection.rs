//! Failure injection: the pipeline must stay correct when LLM calls
//! transiently fail and retry — only the bill changes. The restart
//! section extends the model to durability faults: crashes during WAL
//! appends and interval checkpoints with queries in flight must never
//! double-charge a tenant.

use aida_llm::SimLlm;
use aida_semops::{Dataset, ExecEnv, Executor, PhysicalPlan};
use aida_synth::legal;

fn run_filter(fault_rate: f64) -> (Vec<String>, f64, f64) {
    let workload = legal::generate(5);
    let env = ExecEnv::new(SimLlm::new(5).with_fault_rate(fault_rate));
    workload.install_oracle(&env.llm);
    let ds = Dataset::scan(&workload.lake, "legal").sem_filter(
        "the file contains national statistics on the number of identity theft reports, \
         covering both the years 2001 and 2024",
    );
    let plan = PhysicalPlan::uniform(ds.plan(), aida_llm::ModelId::Flagship, 8);
    let report = Executor::new(&env).execute(&plan);
    let names = report.records.iter().map(|r| r.source.clone()).collect();
    (names, report.cost(), report.time())
}

#[test]
fn results_are_identical_under_faults_but_cost_rises() {
    let (clean_names, clean_cost, clean_time) = run_filter(0.0);
    let (faulty_names, faulty_cost, faulty_time) = run_filter(0.3);
    // Faults are retried: the answers cannot change.
    assert_eq!(clean_names, faulty_names);
    // But the retries are paid for.
    assert!(
        faulty_cost > clean_cost * 1.15,
        "faulty ${faulty_cost} vs clean ${clean_cost}"
    );
    assert!(faulty_time > clean_time, "{faulty_time} vs {clean_time}");
}

#[test]
fn fault_runs_replay_deterministically() {
    assert_eq!(run_filter(0.3), run_filter(0.3));
}

#[test]
fn recorder_accounts_for_fault_retries() {
    use aida::core::Context;
    use aida::prelude::*;
    let run = |fault_rate: f64| {
        let workload = legal::generate(5);
        let rt = Runtime::builder()
            .seed(5)
            .fault_rate(fault_rate)
            .tracing(true)
            .build();
        workload.install_oracle(&rt.env().llm);
        let ctx = Context::builder("legal", workload.lake.clone())
            .description(workload.description.clone())
            .with_vector_index()
            .build(&rt);
        let outcome = rt.query(&ctx).compute(&workload.query).run();
        (
            outcome.answer.unwrap().as_float().unwrap(),
            outcome.cost,
            rt.recorder().trace(),
        )
    };
    let (clean_answer, clean_cost, clean_trace) = run(0.0);
    let (faulty_answer, faulty_cost, faulty_trace) = run(0.3);
    // Same answer at the same seed, but the faulty run billed the retries.
    assert_eq!(clean_answer, faulty_answer);
    assert!(faulty_cost > clean_cost, "${faulty_cost} vs ${clean_cost}");
    // Only the faulty trace carries retry accounting.
    assert_eq!(clean_trace.counters.get("llm.fault_retries"), None);
    let retries = *faulty_trace.counters.get("llm.fault_retries").unwrap();
    assert!(retries > 0, "retries {retries}");
    assert!(!clean_trace.to_jsonl().contains("fault_retry"));
    assert!(faulty_trace
        .to_jsonl()
        .contains("\"event\":\"fault_retry\""));
    // The span tree absorbs the extra attempts: the faulty query root is
    // strictly more expensive, and both roots reconcile with their runs.
    let clean_root = clean_trace.roots()[0];
    let faulty_root = faulty_trace.roots()[0];
    let clean_total = clean_trace.inclusive(clean_root);
    let faulty_total = faulty_trace.inclusive(faulty_root);
    assert!((clean_total.cost_usd - clean_cost).abs() < 1e-9);
    assert!((faulty_total.cost_usd - faulty_cost).abs() < 1e-9);
    assert!(faulty_total.calls > clean_total.calls);
}

#[test]
fn end_to_end_compute_survives_faults() {
    use aida::core::Context;
    use aida::prelude::*;
    let run = |fault_rate: f64| {
        let workload = legal::generate(5);
        let rt = Runtime::builder().seed(5).fault_rate(fault_rate).build();
        workload.install_oracle(&rt.env().llm);
        let ctx = Context::builder("legal", workload.lake.clone())
            .description(workload.description.clone())
            .with_vector_index()
            .build(&rt);
        let outcome = rt.query(&ctx).compute(&workload.query).run();
        (outcome.answer.unwrap().as_float().unwrap(), outcome.cost)
    };
    let (clean_answer, clean_cost) = run(0.0);
    let (faulty_answer, faulty_cost) = run(0.3);
    let truth = legal::true_ratio();
    assert!(((clean_answer - truth) / truth).abs() < 0.05);
    // Same answer under a 30% transient-fault rate, at a higher bill.
    assert_eq!(clean_answer, faulty_answer);
    assert!(faulty_cost > clean_cost, "${faulty_cost} vs ${clean_cost}");
}

// ---- restart under fault ------------------------------------------------

mod restart_under_fault {
    use aida::core::{Context, Runtime};
    use aida::data::{DataLake, Document};
    use aida::llm::snapshot::{CrashPoint, FailPlan};
    use aida::serve::{
        open_loop, LedgerWal, QueryService, ServeConfig, TenantConfig, TenantLedger, TenantLoad,
    };
    use aida_testkit::TestDir;
    use std::sync::Arc;

    fn lake() -> DataLake {
        DataLake::from_docs([
            Document::new("report_2001.txt", "identity theft reports in 2001: 86250"),
            Document::new("report_2002.txt", "identity theft reports in 2002: 161977"),
        ])
    }

    fn service(rt: Runtime) -> QueryService {
        let ctx = Context::builder("lake", lake())
            .description("FTC identity theft reports by year")
            .build(&rt);
        let mut svc = QueryService::new(
            rt,
            ServeConfig {
                workers: 2,
                queue_capacity: 16,
                ..ServeConfig::default()
            },
        );
        svc.register_context("reports", ctx);
        svc.register_tenant("acme", TenantConfig::weighted(2));
        svc.register_tenant("bolt", TenantConfig::default());
        svc
    }

    fn workload() -> Vec<aida::serve::QueryRequest> {
        let loads = [
            TenantLoad::new("acme", "reports")
                .instructions([
                    "count identity theft reports in 2001",
                    "count identity theft reports in 2002",
                ])
                .queries(4)
                .mean_interarrival(30.0),
            TenantLoad::new("bolt", "reports")
                .instructions(["count identity theft reports in 2001"])
                .queries(3)
                .mean_interarrival(45.0)
                .offset(10.0),
        ];
        open_loop(13, &loads)
    }

    /// A crash during a WAL append with queries in flight stops dispatch
    /// immediately, so the durable ledger trails the in-memory one by at
    /// most the single in-flight record — re-admitting the workload after
    /// recovery can never double-charge a tenant.
    #[test]
    fn wal_append_crash_loses_at_most_the_in_flight_record() {
        let dir = TestDir::new("fault-wal-crash");
        let wal_path = dir.file("ledger.wal");
        let mut svc = service(Runtime::builder().seed(13).build());
        let plan = Arc::new(FailPlan::nth(CrashPoint::WalTornAppend, 5).torn_keep(13));
        svc.attach_wal(LedgerWal::open(&wal_path).with_fail_plan(plan.clone()))
            .unwrap();

        let report = svc.run(workload());
        assert!(plan.tripped(), "the injected crash fired");
        assert!(report.wal_failed, "the report records the crash");

        // Recover the durable ledger from disk ("restart").
        let mut recovered = TenantLedger::new();
        let mut wal = LedgerWal::open(&wal_path);
        let recovery = wal.recover(&mut recovered).unwrap();
        assert!(recovery.dropped_tail, "the torn append was truncated");

        // Invariant: per tenant, the durable ledger is never ahead of the
        // in-memory one, and across all tenants at most one record — the
        // in-flight one — is missing.
        let mut lost = 0;
        for (tenant, mem) in svc.tenants().spends() {
            let disk = recovered.spend(tenant);
            assert!(
                disk.usd <= mem.usd + 1e-12,
                "{tenant}: durable ledger must never exceed in-memory spend"
            );
            assert!(disk.calls <= mem.calls);
            if disk.usd.to_bits() != mem.usd.to_bits() {
                lost += 1;
            }
        }
        assert!(
            lost <= 1,
            "ledger delta exceeds one in-flight query ({lost} tenants diverged)"
        );
    }

    /// Interval checkpoints that fail (here: the state path is a
    /// directory, so the rename commit can never land) must not disturb
    /// serving: same answers, bit-identical tenant charges, and the
    /// failures surface as `checkpoint.errors` instead of double-charges.
    #[test]
    fn failed_interval_checkpoints_never_double_charge() {
        let clean_spends = {
            let mut svc = service(Runtime::builder().seed(13).build());
            let report = svc.run(workload());
            assert!(!report.wal_failed);
            (
                report.completions.len(),
                svc.tenants()
                    .spends()
                    .map(|(t, s)| (t.to_string(), s.usd.to_bits()))
                    .collect::<Vec<_>>(),
            )
        };

        let dir = TestDir::new("fault-ckpt");
        let rt = Runtime::builder()
            .seed(13)
            .state_path(dir.path()) // a directory: every checkpoint fails
            .checkpoint_interval(1)
            .tracing(true)
            .build();
        let mut svc = service(rt);
        let report = svc.run(workload());
        let faulty_spends: Vec<(String, u64)> = svc
            .tenants()
            .spends()
            .map(|(t, s)| (t.to_string(), s.usd.to_bits()))
            .collect();

        assert_eq!(report.completions.len(), clean_spends.0);
        assert_eq!(
            faulty_spends, clean_spends.1,
            "failed checkpoints must not change a single charged bit"
        );
        let trace = svc.runtime().recorder().trace();
        let errors = trace
            .counters
            .get("checkpoint.errors")
            .copied()
            .unwrap_or(0);
        assert!(errors > 0, "the failing checkpoints were counted");
    }
}
