//! Offline stand-in for `criterion`: a minimal timing harness with the
//! same bench-authoring surface (`Criterion`, `bench_function`,
//! `benchmark_group`, `criterion_group!`, `criterion_main!`). It runs
//! each bench a fixed number of samples and prints mean wall time per
//! iteration — useful for relative comparisons, without criterion's
//! statistics, warm-up tuning, or HTML reports.

use std::time::Instant;

/// Top-level bench driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A named group with its own sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each bench takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to bench closures; `iter` times the supplied routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Times one sample of `routine` (called repeatedly by the driver).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed().as_nanos();
        drop(out);
        self.samples_ns.push(elapsed);
    }
}

fn run_bench<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    // One untimed warm-up sample, then the timed ones.
    f(&mut bencher);
    bencher.samples_ns.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let n = bencher.samples_ns.len().max(1) as u128;
    let mean_ns = bencher.samples_ns.iter().sum::<u128>() / n;
    println!(
        "bench {name:<40} mean {:>12.3} µs ({sample_size} samples)",
        mean_ns as f64 / 1000.0
    );
}

/// Declares a function that runs the listed benches in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut calls = 0usize;
        Criterion::default().bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        assert!(calls >= 20);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0usize;
        group.sample_size(3).bench_function("inner", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        group.finish();
        assert_eq!(calls, 4, "1 warm-up + 3 samples");
    }
}
