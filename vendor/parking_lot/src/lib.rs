//! Offline stand-in for `parking_lot`, covering the subset this workspace
//! uses: `Mutex::{new, lock, into_inner}` and
//! `RwLock::{new, read, write, into_inner}`, with guards that deref like
//! the real ones. Backed by `std::sync`; poisoning is recovered rather
//! than propagated, matching parking_lot's no-poison semantics.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
