//! Collection strategies (`prop::collection::vec`).

use std::fmt::Debug;
use std::ops::Range;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy producing `Vec`s with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with element strategy `element` and length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_stays_in_range() {
        let s = vec(0i64..10, 2..5);
        let mut rng = TestRng::from_name("collection");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }
}
