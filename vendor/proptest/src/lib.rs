//! Offline stand-in for `proptest`: a deterministic mini property-testing
//! runner covering the API subset this workspace's tests use.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   printed; the RNG is seeded from the test name, so reruns reproduce.
//! * **Regex strategies** support literals, `.`, `[...]` classes, and
//!   `{m,n}` quantifiers only.
//! * `ProptestConfig` carries only `cases`.

pub mod collection;
pub mod rng;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything tests conventionally glob-import.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of real proptest's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Supports an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::rng::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut executed = 0u32;
                let mut attempts = 0u32;
                while executed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(16).max(64),
                        "proptest: too many rejected cases (prop_assume! too strict?)"
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => executed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {}\n  inputs: {}", msg, __inputs);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case (early-returns an error) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case when `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case when `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the current case (without counting it) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes(a in -1000i64..1000, b in -1000i64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_skips_without_failing(n in 0i64..10) {
            prop_assume!(n != 3);
            prop_assert!(n != 3);
        }

        #[test]
        fn vectors_and_tuples_generate(pairs in prop::collection::vec((0i64..5, 0usize..4), 0..10)) {
            prop_assert!(pairs.len() < 10);
            for (a, b) in &pairs {
                prop_assert!((0..5).contains(a));
                prop_assert!(*b < 4);
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #[test]
            fn always_fails(n in 0i64..10) {
                prop_assert!(n < 0, "n was {}", n);
            }
        }
        always_fails();
    }
}
