//! Runner configuration and case-level error type.

/// How many cases `proptest!` runs per test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped without counting.
    Reject(String),
    /// A `prop_assert*!` failed; the whole test fails.
    Fail(String),
}
