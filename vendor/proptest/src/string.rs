//! String strategies from regex-like patterns.
//!
//! A `&str` is itself a strategy (as in real proptest). Supported syntax
//! is the subset this workspace's tests use: literal characters, `.`
//! (any non-newline printable character plus a couple of non-ASCII
//! samples), character classes `[a-z0-9 ]` with ranges, and `{m,n}` /
//! `{n}` quantifiers on the preceding atom.

use crate::rng::TestRng;
use crate::strategy::Strategy;

#[derive(Debug, Clone)]
enum Atom {
    Any,
    Class(Vec<char>),
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let mut members = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        members.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        members.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in {pattern:?}"
                );
                i += 1; // consume ']'
                Atom::Class(members)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (mut min, mut max) = (1, 1);
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .expect("unterminated quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            if let Some((lo, hi)) = body.split_once(',') {
                min = lo.trim().parse().expect("bad quantifier");
                max = hi.trim().parse().expect("bad quantifier");
            } else {
                min = body.trim().parse().expect("bad quantifier");
                max = min;
            }
            i = close + 1;
        }
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Characters `.` draws from: printable ASCII plus a few non-ASCII
/// samples, excluding newline (regex `.` semantics).
fn any_char(rng: &mut TestRng) -> char {
    const EXTRAS: [char; 4] = ['é', '日', '本', '“'];
    let roll = rng.index(100);
    if roll < 95 {
        char::from_u32(0x20 + rng.index(0x7f - 0x20) as u32).unwrap()
    } else {
        EXTRAS[rng.index(EXTRAS.len())]
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(self) {
            let count = piece.min + rng.index(piece.max - piece.min + 1);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Any => out.push(any_char(rng)),
                    Atom::Class(members) => {
                        assert!(!members.is_empty(), "empty character class");
                        out.push(members[rng.index(members.len())]);
                    }
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::from_name("string-class");
        for _ in 0..200 {
            let s = "[a-c0-1 ]{0,6}".generate(&mut rng);
            assert!(s.chars().count() <= 6);
            assert!(s.chars().all(|c| "abc01 ".contains(c)), "bad char in {s:?}");
        }
    }

    #[test]
    fn dot_excludes_newline() {
        let mut rng = TestRng::from_name("string-dot");
        for _ in 0..100 {
            let s = ".{0,50}".generate(&mut rng);
            assert!(s.chars().count() <= 50);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::from_name("string-lit");
        assert_eq!("abc".generate(&mut rng), "abc");
    }
}
