//! Deterministic RNG for test-case generation (SplitMix64 seeded from an
//! FNV hash of the fully-qualified test name, so every test gets a
//! stable, independent stream).

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name (test path).
    pub fn from_name(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash | 1 }
    }

    /// Next 64 uniformly distributed bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)`; `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_name_dependent() {
        let mut a = TestRng::from_name("x::a");
        let mut b = TestRng::from_name("x::a");
        let mut c = TestRng::from_name("x::b");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = TestRng::from_name("unit");
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
