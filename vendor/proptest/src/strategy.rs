//! Value-generation strategies (no shrinking: a failing case panics with
//! its inputs printed; rerun with the same build to reproduce — the RNG
//! is seeded from the test name).

use std::fmt::Debug;
use std::rc::Rc;

use crate::rng::TestRng;

/// Generates values of `Self::Value` from a deterministic RNG.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; failing the predicate retries (bounded).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Builds recursive strategies: `self` is the leaf; `f` wraps an
    /// inner strategy into a composite. `depth` bounds nesting; the
    /// remaining sizing parameters are accepted for API compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let composite = f(current).boxed();
            current = Union::new(vec![leaf.clone(), composite]).boxed();
        }
        current
    }

    /// Type-erases the strategy behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter (bounded rejection sampling).
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Uniform choice among alternatives (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.index(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let span = (end as i128) - (start as i128) + 1;
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((start as i128) + off) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-5i64..7).generate(&mut r);
            assert!((-5..7).contains(&v));
            let u = (0usize..3).generate(&mut r);
            assert!(u < 3);
            let f = (0.25f32..0.75).generate(&mut r);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_union_and_just_compose() {
        let mut r = rng();
        let s = Union::new(vec![
            Just("a".to_string()).boxed(),
            (0i64..10).prop_map(|n| n.to_string()).boxed(),
        ]);
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!(v == "a" || v.parse::<i64>().is_ok());
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut r = rng();
        let mut saw_node = false;
        for _ in 0..100 {
            let t = strat.generate(&mut r);
            assert!(depth(&t) <= 4);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion should produce composite nodes");
    }
}
