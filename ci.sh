#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo test -q

# Static analysis: the workspace must stay clean above the checked-in
# baseline (lint.toml), and the lint report itself must be
# deterministic — two runs produce byte-identical JSONL.
AIDA_RESULTS_DIR=target/ci-lint-a cargo run -q -p aida-lint -- --deny-new
AIDA_RESULTS_DIR=target/ci-lint-b cargo run -q -p aida-lint -- --deny-new
cmp target/ci-lint-a/lint_report.jsonl target/ci-lint-b/lint_report.jsonl

# Pyrite VM parity: the differential suite (fixture corpus, error
# fixtures, fuel sweeps, generated program matrix) must hold — the
# tree-walker is the VM's oracle. Release build so the property matrix
# runs at full size quickly.
cargo test -q --release -p aida-script --test differential

# Pyrite VM performance + determinism: the bench binary asserts the
# warm VM is >=2x the tree-walker (exit nonzero otherwise), and its
# canonical JSON carries only deterministic metrics — two runs must be
# byte-identical.
AIDA_RESULTS_DIR=target/ci-pyrite-a \
  cargo run -q --release -p aida-bench --bin pyrite_bench >/dev/null
AIDA_RESULTS_DIR=target/ci-pyrite-b \
  cargo run -q --release -p aida-bench --bin pyrite_bench >/dev/null
cmp target/ci-pyrite-a/BENCH_pyrite_vm.json target/ci-pyrite-b/BENCH_pyrite_vm.json

# Static cost bounds: the analyzer snapshot over the fixed corpus must
# be deterministic — two runs byte-identical on both the canonical JSON
# and the per-program JSONL — and the binary itself asserts every bound
# survives the plan-cache artifact round-trip (exit nonzero otherwise).
AIDA_RESULTS_DIR=target/ci-bounds-a \
  cargo run -q --release -p aida-bench --bin bounds_bench >/dev/null
AIDA_RESULTS_DIR=target/ci-bounds-b \
  cargo run -q --release -p aida-bench --bin bounds_bench >/dev/null
cmp target/ci-bounds-a/BENCH_bounds.json target/ci-bounds-b/BENCH_bounds.json
cmp target/ci-bounds-a/bounds.jsonl target/ci-bounds-b/bounds.jsonl

# Serving layer: the concurrency stress test wants optimized atomics and
# real thread pressure, and the soak smoke proves the service binary
# runs end to end (SERVE_SOAK_SMOKE=1 shrinks the workload). The soak
# itself asserts the shared semantic cache is strictly cheaper than the
# cache-off baseline and exits nonzero otherwise.
cargo test -q --release --test serve
SERVE_SOAK_SMOKE=1 AIDA_RESULTS_DIR=target/ci-cache-a \
  cargo run -q --release -p aida-bench --bin serve_soak >/dev/null

# Live front door: wire-protocol codec properties, listener soaks, and
# closed-loop client/autoscaler behavior (release: the soaks drive real
# worker threads).
cargo test -q --release --test net

# Listener smoke: the live phase drives a closed-loop fleet over the
# simulated transport through the wire protocol into the same service.
# The binary asserts in-process byte-identity, an SLO-holding autoscaler
# that beats the fixed max pool on worker-seconds, and zero wire errors;
# the gate additionally demands two separate processes agree byte-for-
# byte on the live trace, the live health export, and the bench JSON.
SERVE_SOAK_SMOKE=1 SERVE_SOAK_LIVE=1 AIDA_RESULTS_DIR=target/ci-live-a \
  cargo run -q --release -p aida-bench --bin serve_soak >/dev/null
SERVE_SOAK_SMOKE=1 SERVE_SOAK_LIVE=1 AIDA_RESULTS_DIR=target/ci-live-b \
  cargo run -q --release -p aida-bench --bin serve_soak >/dev/null
cmp target/ci-live-a/traces/serve_live.jsonl target/ci-live-b/traces/serve_live.jsonl
cmp target/ci-live-a/health_live.jsonl target/ci-live-b/health_live.jsonl
cmp target/ci-live-a/BENCH_serve_live.json target/ci-live-b/BENCH_serve_live.json

# Semantic cache: warm restarts, eviction interplay, and corrupted
# snapshots (also covered in the debug `cargo test -q` above, but the
# release run matches how the service actually ships).
cargo test -q --release --test cache

# Cache determinism: a second seeded soak must produce a byte-identical
# service trace — memoization may not perturb replay. The health export
# is part of the same contract: per-tenant windowed percentiles and SLO
# burn verdicts must replay byte-for-byte.
SERVE_SOAK_SMOKE=1 AIDA_RESULTS_DIR=target/ci-cache-b \
  cargo run -q --release -p aida-bench --bin serve_soak >/dev/null
cmp target/ci-cache-a/traces/serve_soak.jsonl target/ci-cache-b/traces/serve_soak.jsonl
cmp target/ci-cache-a/health.jsonl target/ci-cache-b/health.jsonl

# Flight-recorder smoke: a soak with an armed WAL crash point must leave
# a parseable flight dump behind (header line naming the trigger, then
# the retained event records). The probe inside serve_soak additionally
# asserts the dump carries >= 64 events ending in the crash record.
rm -f target/ci-cache-a/traces/flight_1.jsonl
SERVE_SOAK_SMOKE=1 SERVE_SOAK_CRASH=1 AIDA_RESULTS_DIR=target/ci-cache-a \
  cargo run -q --release -p aida-bench --bin serve_soak >/dev/null
test -s target/ci-cache-a/traces/flight_1.jsonl
head -c 11 target/ci-cache-a/traces/flight_1.jsonl | grep -q '{"flight":"'

# Cold-vs-warm through a disk spill: cache_bench writes the snapshot,
# reloads it in a fresh runtime, and asserts identical answers at lower
# cost (exits nonzero otherwise).
AIDA_RESULTS_DIR=target/ci-cache-a \
  cargo run -q --release -p aida-bench --bin cache_bench >/dev/null

# Durability: the crash-injection suite must recover the SAME state on
# every run. Two same-seed passes dump the recovered scenario as JSONL
# and the dumps must be byte-identical.
AIDA_DURABILITY_DUMP=target/ci-durability-a cargo test -q --test durability
AIDA_DURABILITY_DUMP=target/ci-durability-b cargo test -q --test durability
cmp target/ci-durability-a/recovered_state.jsonl \
  target/ci-durability-b/recovered_state.jsonl

# Kill-9 smoke: murder a soak mid-run (leaving whatever torn WAL tail /
# half-written checkpoint it managed), then rerun against the same
# durable dir. The restart probe must swallow the wreckage and the full
# rerun must pass all its restart assertions (exit 0).
rm -rf target/ci-kill9
(timeout -s KILL 1 env SERVE_SOAK_SMOKE=1 AIDA_RESULTS_DIR=target/ci-kill9 \
  ./target/release/serve_soak >/dev/null 2>&1 || true)
SERVE_SOAK_SMOKE=1 AIDA_RESULTS_DIR=target/ci-kill9 \
  cargo run -q --release -p aida-bench --bin serve_soak >/dev/null

# Checkpoint scaling: the bench itself asserts delta-mode bytes per
# checkpoint stay within 2x between the 1x and 10x store (smoke rungs)
# while full rewrites grow with the store, and that group commit cuts
# ledger fsyncs >= 5x (exit nonzero otherwise). Its canonical JSON
# carries only deterministic metrics — two runs must be byte-identical.
CHECKPOINT_BENCH_SMOKE=1 AIDA_RESULTS_DIR=target/ci-ckpt-a \
  cargo run -q --release -p aida-bench --bin checkpoint_bench >/dev/null
CHECKPOINT_BENCH_SMOKE=1 AIDA_RESULTS_DIR=target/ci-ckpt-b \
  cargo run -q --release -p aida-bench --bin checkpoint_bench >/dev/null
cmp target/ci-ckpt-a/BENCH_checkpoint.json target/ci-ckpt-b/BENCH_checkpoint.json
