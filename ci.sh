#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo test -q

# Serving layer: the concurrency stress test wants optimized atomics and
# real thread pressure, and the soak smoke proves the service binary
# runs end to end (SERVE_SOAK_SMOKE=1 shrinks the workload).
cargo test -q --release --test serve
SERVE_SOAK_SMOKE=1 cargo run -q --release -p aida-bench --bin serve_soak >/dev/null
